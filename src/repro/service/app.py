"""HTTP JSON API over the job manager and result store.

The route handlers live in :class:`ServiceAPI`, a transport-agnostic
core: one method per endpoint, each returning an :class:`ApiResponse`
value (status, body bytes or a blob file reference, content type,
ETag).  Two transports serve it:

* this module's ``ThreadingHTTPServer`` (one thread per connection, the
  original reference implementation), and
* :mod:`repro.service.aserver`, the asyncio event-loop server that
  multiplexes thousands of keep-alive connections on one core.

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
GET    ``/v1/health``               liveness + store/job-manager counters
GET    ``/v1/scenarios``            the scenario registry listing
POST   ``/v1/sweeps``               submit a sweep; returns the job id
GET    ``/v1/jobs``                 all jobs, oldest first
GET    ``/v1/jobs/<id>``            one job's status/progress payload
GET    ``/v1/jobs/<id>/results``    finished job's results (409 until done)
GET    ``/v1/results/<key>``        one cached blob (ETag = content address)
POST   ``/v1/results:batch``        N cached blobs, newline-delimited JSON
GET    ``/v1/store/stats``          store counters (hits/misses/disk bytes)
POST   ``/v1/solve``                synchronous small-game solving
POST   ``/v1/workers``              register a cluster worker
POST   ``/v1/lease``                lease one work unit to a worker
POST   ``/v1/complete``             post a unit's result rows (quorum vote)
GET    ``/v1/cluster``              cluster scheduler counters + workers
====== ============================ ==========================================

``HEAD`` is supported on every GET route (same headers, no body).
Because results are content-addressed, ``/v1/results/<key>`` carries a
perfect ``ETag`` — the key itself — and honours ``If-None-Match`` with
a body-less 304, so warm clients pay zero body bytes per revalidation.

Sweep submission replies immediately (HTTP 202) with the job id; heavy
work happens on the manager's worker threads and process pool.  The
``/v1/results/<key>`` fetch serves the store's canonical bytes, so a
warm client read is byte-identical to what the cold computation wrote.
The cluster endpoints (``/v1/workers``, ``/v1/lease``,
``/v1/complete``) forward their JSON bodies verbatim into the attached
:class:`~repro.cluster.coordinator.ClusterCoordinator` (404 when the
server runs without one).

Lifecycle: the server owns its :class:`JobManager` — ``server_close()``
shuts the manager (and its persistent process pool) down, and the
blocking ``serve`` entry point converts SIGTERM into the same clean
path, so a stopped server never leaks worker processes.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.results import format_table
from repro.service.jobs import JobManager, SweepRequest, TooManyJobsError
from repro.service.solve import solve_request
from repro.service.store import ResultStore

__all__ = [
    "ApiError",
    "ApiResponse",
    "ServiceAPI",
    "ManagedHTTPServer",
    "etag_matches",
    "make_server",
    "start_server",
    "serve_forever",
]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_BATCH_KEYS = 10_000
# Blobs at or above this size are handed to the transport as a file
# reference (``ApiResponse.blob_path``) for sendfile/streamed serving;
# smaller ones ride in memory through the store's LRU.
_SENDFILE_MIN_BYTES = 64 * 1024


class ApiError(Exception):
    """An HTTP-visible request failure: status code plus message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def etag_matches(header: Optional[str], etag: str) -> bool:
    """Does an ``If-None-Match`` header value match a strong ``etag``?

    Accepts ``*``, a single tag, or a comma-separated list; weak
    validators (``W/"..."``) compare by opaque tag, which is correct
    here because a content address can never collide weakly.
    """
    if not header:
        return False
    header = header.strip()
    if header == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclass
class ApiResponse:
    """One endpoint's transport-agnostic result.

    Exactly one of ``body`` or ``blob_path`` is set (``body`` may be
    empty for 304s).  ``chunks`` optionally carries a pre-split body
    for transports that stream (the NDJSON batch endpoint); when set,
    ``body`` is their concatenation for transports that don't.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    etag: Optional[str] = None
    blob_path: Optional[str] = None
    blob_size: int = 0
    chunks: Optional[List[bytes]] = field(default=None, repr=False)

    @property
    def content_length(self) -> int:
        """Declared body length (the blob size for file responses)."""
        if self.blob_path is not None:
            return self.blob_size
        return len(self.body)


class ServiceAPI:
    """The route table and handlers, independent of any HTTP transport.

    A transport parses the request line, headers, and body off its
    connection and calls :meth:`handle`; everything after that —
    routing, validation, the JSON error envelope, ETag revalidation —
    happens here, so the threaded and asyncio servers cannot drift
    apart behaviourally.
    """

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    # -- dispatch ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        if_none_match: Optional[str] = None,
    ) -> ApiResponse:
        """Serve one request; failures become the JSON error envelope."""
        try:
            handler, args = self._route(method, path)
            return handler(*args, body=body, if_none_match=if_none_match)
        except ApiError as exc:
            return self._json(exc.status, {"error": exc.message})
        except TooManyJobsError as exc:
            return self._json(503, {"error": str(exc)})
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            status = 404 if isinstance(exc, KeyError) else 400
            return self._json(status, {"error": str(message)})
        except Exception as exc:  # pragma: no cover - defensive 500
            return self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str, raw_path: str) -> Tuple[Any, tuple]:
        """Resolve (handler, args) for the request path."""
        path = raw_path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if method == "HEAD":
            method = "GET"  # identical routing; transports drop the body
        if method == "GET":
            if parts == ["v1", "health"]:
                return self._get_health, ()
            if parts == ["v1", "scenarios"]:
                return self._get_scenarios, ()
            if parts == ["v1", "jobs"]:
                return self._get_jobs, ()
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._get_job, (parts[2],)
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "results"
            ):
                return self._get_job_results, (parts[2],)
            if len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self._get_result_blob, (parts[2],)
            if parts == ["v1", "store", "stats"]:
                return self._get_store_stats, ()
            if parts == ["v1", "cluster"]:
                return self._get_cluster, ()
        if method == "POST":
            if parts == ["v1", "sweeps"]:
                return self._post_sweep, ()
            if parts == ["v1", "results:batch"]:
                return self._post_results_batch, ()
            if parts == ["v1", "solve"]:
                return self._post_solve, ()
            if parts == ["v1", "workers"]:
                return self._post_register_worker, ()
            if parts == ["v1", "lease"]:
                return self._post_lease, ()
            if parts == ["v1", "complete"]:
                return self._post_complete, ()
        raise ApiError(404, f"no route for {method} {raw_path}")

    # -- response/body helpers -----------------------------------------

    @staticmethod
    def _json(status: int, payload: Any) -> ApiResponse:
        """One JSON response (human-readable rendering, both servers)."""
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return ApiResponse(status, body)

    @staticmethod
    def _parse_json_body(body: bytes) -> Dict[str, Any]:
        """Parse a request body as a JSON object (ApiError on garbage)."""
        if not body:
            return {}
        try:
            obj = json.loads(body)
        except ValueError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(obj, dict):
            raise ApiError(400, "JSON body must be an object")
        return obj

    def _store(self) -> ResultStore:
        """The attached result store (404 when absent)."""
        store = self.manager.store
        if store is None:
            raise ApiError(404, "server is running without a result store")
        return store

    def _coordinator(self):
        """The attached cluster coordinator (404 when absent)."""
        coordinator = self.manager.coordinator
        if coordinator is None:
            raise ApiError(
                404, "server is running without a cluster coordinator"
            )
        return coordinator

    # -- endpoints -----------------------------------------------------

    def _get_health(self, **_ignored) -> ApiResponse:
        """Liveness plus store, manager, and cluster counters."""
        store = self.manager.store
        coordinator = self.manager.coordinator
        return self._json(
            200,
            {
                "status": "ok",
                "store": None if store is None else store.stats(),
                "manager": self.manager.stats(),
                "cluster": None
                if coordinator is None
                else coordinator.stats(),
            },
        )

    def _get_store_stats(self, **_ignored) -> ApiResponse:
        """The result store's counters (hits/misses, blob count, bytes)."""
        return self._json(200, self._store().stats())

    def _get_cluster(self, **_ignored) -> ApiResponse:
        """Cluster scheduler counters plus the per-worker registry."""
        coordinator = self._coordinator()
        return self._json(
            200,
            {"stats": coordinator.stats(), "workers": coordinator.workers()},
        )

    def _post_register_worker(self, body=b"", **_ignored) -> ApiResponse:
        """Register a cluster worker; returns its assigned id."""
        parsed = self._parse_json_body(body)
        name = parsed.get("name")
        return self._json(200, self._coordinator().register_worker(name))

    def _post_lease(self, body=b"", **_ignored) -> ApiResponse:
        """Lease the next eligible work unit to the requesting worker."""
        parsed = self._parse_json_body(body)
        worker_id = parsed.get("worker_id")
        if not worker_id:
            raise ApiError(400, "lease request needs a worker_id")
        return self._json(200, self._coordinator().lease(worker_id))

    def _post_complete(self, body=b"", **_ignored) -> ApiResponse:
        """Record a worker's result rows for a unit as a quorum vote."""
        parsed = self._parse_json_body(body)
        worker_id = parsed.get("worker_id")
        unit_id = parsed.get("unit_id")
        rows = parsed.get("rows")
        if not worker_id or not unit_id or not isinstance(rows, list):
            raise ApiError(
                400, "complete request needs worker_id, unit_id, and rows"
            )
        return self._json(
            200, self._coordinator().complete(worker_id, unit_id, rows)
        )

    def _get_scenarios(self, **_ignored) -> ApiResponse:
        """The scenario registry listing."""
        return self._json(
            200, {"scenarios": self.manager.scenario_listing()}
        )

    def _get_jobs(self, **_ignored) -> ApiResponse:
        """Status payloads for every job, oldest first."""
        return self._json(
            200, {"jobs": [job.to_json_obj() for job in self.manager.jobs()]}
        )

    def _get_job(self, job_id: str, **_ignored) -> ApiResponse:
        """One job's status payload."""
        return self._json(200, self.manager.get(job_id).to_json_obj())

    def _get_job_results(self, job_id: str, **_ignored) -> ApiResponse:
        """A finished job's results (409 while running, 502 on error)."""
        job = self.manager.get(job_id)
        if job.status in ("queued", "running"):
            raise ApiError(
                409, f"job {job_id} is {job.status}; poll until done"
            )
        if job.status == "error" or job.results is None:
            raise ApiError(502, f"job {job_id} failed: {job.error}")
        # ``cached`` is transport metadata, not part of the result rows
        # (rows must serialize byte-identically warm or cold), so it
        # rides alongside as a parallel array.
        return self._json(
            200,
            {
                "job": job.to_json_obj(),
                "results": job.results.to_json_obj(),
                "cached": [r.cached for r in job.results],
            },
        )

    def _get_result_blob(
        self, key: str, if_none_match: Optional[str] = None, **_ignored
    ) -> ApiResponse:
        """One cached case: canonical store bytes, content-address ETag.

        The content address *is* the representation's identity, so the
        ETag is simply the quoted key and an ``If-None-Match`` hit is a
        body-less 304 — the cheapest possible warm read.  Blobs past
        ``_SENDFILE_MIN_BYTES`` are returned as a file reference so the
        async transport can ``sendfile`` them without copying through
        Python.
        """
        store = self._store()
        try:
            path = store.path_for(key)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        etag = f'"{key}"'
        size: Optional[int]
        try:
            size = os.stat(path).st_size
        except OSError:
            size = None
        if size is None:
            # Rare: memory-only entry (file raced away); serve the LRU.
            data = store.get_bytes_cached(key)
            if data is None:
                raise ApiError(404, f"no cached result under key {key}")
            if etag_matches(if_none_match, etag):
                return ApiResponse(304, b"", etag=etag)
            return ApiResponse(200, data, etag=etag)
        if etag_matches(if_none_match, etag):
            return ApiResponse(304, b"", etag=etag)
        if size >= _SENDFILE_MIN_BYTES:
            return ApiResponse(
                200, b"", etag=etag, blob_path=path, blob_size=size
            )
        data = store.get_bytes_cached(key)
        if data is None:
            raise ApiError(404, f"no cached result under key {key}")
        return ApiResponse(200, data, etag=etag)

    def _post_results_batch(self, body=b"", **_ignored) -> ApiResponse:
        """N cached blobs in one round trip, as newline-delimited JSON.

        Request: ``{"keys": ["<sha256>", ...]}``.  Response: one JSON
        object per line, in request order —
        ``{"key": ..., "found": true, "result": <blob>}`` or
        ``{"key": ..., "found": false}`` — so a client can stream-parse
        results as they arrive instead of buffering one giant array.
        """
        parsed = self._parse_json_body(body)
        keys = parsed.get("keys")
        if not isinstance(keys, list) or not all(
            isinstance(k, str) for k in keys
        ):
            raise ApiError(400, "batch request needs keys: [str, ...]")
        if len(keys) > _MAX_BATCH_KEYS:
            raise ApiError(
                413, f"at most {_MAX_BATCH_KEYS} keys per batch request"
            )
        store = self._store()
        chunks: List[bytes] = []
        for key in keys:
            try:
                data = store.get_bytes_cached(key)
            except ValueError:
                data = None  # malformed key: reported as not found
            key_json = json.dumps(key).encode("utf-8")
            if data is None:
                chunks.append(b'{"key":%s,"found":false}\n' % key_json)
            else:
                chunks.append(
                    b'{"key":%s,"found":true,"result":%s}\n'
                    % (key_json, data.strip())
                )
        return ApiResponse(
            200,
            b"".join(chunks),
            content_type="application/x-ndjson",
            chunks=chunks,
        )

    def _post_sweep(self, body=b"", **_ignored) -> ApiResponse:
        """Submit (or single-flight join) a sweep; 202 with the job id."""
        request = SweepRequest.from_json_obj(self._parse_json_body(body))
        job = self.manager.submit(request)
        return self._json(
            202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "submissions": job.submissions,
            },
        )

    def _post_solve(self, body=b"", **_ignored) -> ApiResponse:
        """Synchronously solve one small normal-form game."""
        return self._json(200, solve_request(self._parse_json_body(body)))


class _Handler(BaseHTTPRequestHandler):
    """Thin threaded-transport adapter over one :class:`ServiceAPI`.

    Reads the request body up front (bounded), delegates to the shared
    route handlers, and writes the response with correct keep-alive
    framing.  Because the body is consumed before dispatch, an errored
    POST can never leave unread bytes to desync the next request on
    the connection.
    """

    api: ServiceAPI = None  # type: ignore[assignment]
    quiet: bool = True
    protocol_version = "HTTP/1.1"
    # The stdlib handler writes headers and body as separate sends; on
    # a keep-alive connection Nagle holds the second send until the
    # peer's delayed ACK (~40 ms/request on Linux loopback).  Fresh
    # per-request connections never showed it because close() flushed.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging unless ``quiet`` is off."""
        if not self.quiet:
            super().log_message(format, *args)

    def _read_request_body(self) -> Optional[bytes]:
        """The full request body, or ``None`` after an error response.

        Chunked uploads and bodies past the size limit are answered
        immediately and the connection is closed — skipping an
        arbitrarily large body is not worth the read.
        """
        if self.headers.get("Transfer-Encoding"):
            self.close_connection = True
            self._respond(
                ServiceAPI._json(
                    411, {"error": "chunked request bodies are unsupported"}
                ),
                head_only=False,
            )
            return None
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            self._respond(
                ServiceAPI._json(413, {"error": "request body too large"}),
                head_only=False,
            )
            return None
        return self.rfile.read(length) if length > 0 else b""

    def _respond(self, response: ApiResponse, head_only: bool) -> None:
        """Write one :class:`ApiResponse` with correct framing headers."""
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        if response.etag is not None:
            self.send_header("ETag", response.etag)
        self.send_header("Content-Length", str(response.content_length))
        self.end_headers()
        if head_only or response.status == 304:
            return
        if response.blob_path is not None:
            try:
                with open(response.blob_path, "rb") as handle:
                    shutil.copyfileobj(handle, self.wfile)
            except OSError:
                # The blob raced away after routing; the declared
                # Content-Length can no longer be honoured.
                self.close_connection = True
            return
        if response.body:
            self.wfile.write(response.body)

    def _dispatch(self, method: str) -> None:
        """Read, delegate to the shared API core, respond."""
        body = self._read_request_body()
        if body is None:
            return
        response = self.api.handle(
            method, self.path, body, self.headers.get("If-None-Match")
        )
        self._respond(response, head_only=method == "HEAD")

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Serve one GET request."""
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802 (http.server API)
        """Serve one HEAD request (GET headers, no body)."""
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Serve one POST request."""
        self._dispatch("POST")


class ManagedHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns its :class:`JobManager`'s lifecycle.

    ``server_close()`` also shuts the manager down — including the
    persistent ``ProcessPoolExecutor`` — so every stop path (SIGTERM via
    ``serve``, tests tearing a server down, embedding callers) releases
    the worker processes without needing to know about the manager.
    """

    daemon_threads = True
    manager: Optional[JobManager] = None

    def server_close(self) -> None:
        """Close the listening socket, then the job manager and its pool."""
        super().server_close()
        if self.manager is not None:
            self.manager.shutdown()


def build_manager(
    manager: Optional[JobManager] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    coordinator: Optional[Any] = None,
) -> JobManager:
    """The manager both transports build their server around.

    Returns ``manager`` unchanged when given one; otherwise constructs
    a fresh :class:`JobManager` from the parts.
    """
    if manager is not None:
        return manager
    return JobManager(
        store=store, max_workers=max_workers, coordinator=coordinator
    )


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    manager: Optional[JobManager] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    coordinator: Optional[Any] = None,
    quiet: bool = True,
) -> ManagedHTTPServer:
    """Build (but don't start) the threaded HTTP server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the
    in-process quickstart use.  A fresh :class:`JobManager` is created
    from ``store``/``max_workers``/``coordinator`` unless one is passed
    in; attaching a
    :class:`~repro.cluster.coordinator.ClusterCoordinator` enables the
    ``/v1/workers``/``/v1/lease``/``/v1/complete`` endpoints and
    ``executor="cluster"`` sweeps.
    """
    manager = build_manager(manager, store, max_workers, coordinator)

    class BoundHandler(_Handler):
        """The handler class closed over this server's API core."""

    BoundHandler.api = ServiceAPI(manager)
    BoundHandler.quiet = quiet
    server = ManagedHTTPServer((host, port), BoundHandler)
    server.manager = manager
    return server


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the threaded server on a background thread.

    The embedding entry point: examples and tests run the whole service
    in-process and talk to ``http://host:port`` like any remote client.
    Shut down with ``server.shutdown()`` then ``server.server_close()``.
    (:func:`repro.service.aserver.start_async_server` is the drop-in
    asyncio equivalent.)
    """
    server = make_server(host=host, port=port, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _sigterm_to_interrupt(signum, frame) -> None:
    """SIGTERM handler: unwind ``serve_forever`` through its clean path.

    Raising inside the handler (which runs on the main thread, *under*
    the serving loop's frame) lets the ``finally`` block close the
    socket and the job manager; calling ``server.shutdown()`` here
    instead would deadlock — it waits for the very loop this handler
    interrupted.
    """
    raise KeyboardInterrupt


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8642,
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    quiet: bool = False,
    store: Optional[ResultStore] = None,
    coordinator: Optional[Any] = None,
) -> None:
    """Blocking entry point for the *threaded* reference server.

    ``python -m repro.service serve`` runs the asyncio server by
    default and reaches this only under ``--legacy-threads``.  Installs
    a SIGTERM handler (when running on the main thread) so ``kill
    <pid>`` and container stops drain through the same clean shutdown
    as Ctrl-C: socket closed, job manager and process pool stopped, no
    leaked workers.  ``store``/``coordinator`` let callers (the
    ``python -m repro.cluster coordinator`` CLI) pass pre-built
    components; otherwise ``cache_dir`` builds the store.
    """
    if store is None and cache_dir is not None:
        store = ResultStore(cache_dir)
    server = make_server(
        host=host,
        port=port,
        store=store,
        max_workers=max_workers,
        coordinator=coordinator,
        quiet=quiet,
    )
    actual_host, actual_port = server.server_address[:2]
    rows = [
        ["url", f"http://{actual_host}:{actual_port}"],
        ["server", "threaded (legacy reference)"],
        ["cache_dir", cache_dir or "<none: recompute every case>"],
        ["max_workers", max_workers or 1],
    ]
    if coordinator is not None:
        stats = coordinator.stats()
        rows.append(["cluster", f"redundancy={stats['redundancy']}"])
    print(format_table("repro.service", ["setting", "value"], rows))
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:
        pass  # not on the main thread; rely on the embedder to stop us
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        server.shutdown()
        server.server_close()  # also shuts the manager and its pool down
