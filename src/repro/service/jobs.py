"""Job manager: sweep requests, single-flight dedup, shared process pool.

A *job* is one sweep request (scenarios/families/smoke + seed knobs)
executed asynchronously on a worker thread, with its cases consulted
against the content-addressed :class:`~repro.service.store.ResultStore`
first and the misses sharded across one *persistent*
``ProcessPoolExecutor`` shared by every job — the pool's workers warm up
once and then serve the whole server lifetime.

Identical requests are *single-flighted*: while a job for a request
signature is still running, further submissions of the same signature
attach to it instead of spawning duplicate computation.  Combined with
the store this gives the two cache layers of the service: in-flight
dedup for concurrent identical traffic, content addressing for repeat
traffic over time.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.registry import all_scenarios
from repro.experiments.results import ExperimentResult, ResultSet
from repro.experiments.runner import (
    _collect_cases,
    _execute_cases,
    _smoke_case_list,
)
from repro.obs.metrics import default_registry
from repro.obs.trace import span_for_trace_id
from repro.service.store import ResultStore, canonical_json

__all__ = ["SweepRequest", "Job", "JobManager", "TooManyJobsError"]


class TooManyJobsError(RuntimeError):
    """Raised when a submit would exceed the concurrent-job limit."""


@dataclass(frozen=True)
class SweepRequest:
    """A normalized sweep request (the unit of single-flight dedup).

    ``executor`` selects where cache-miss cases compute: ``"local"``
    (the job thread / shared process pool) or ``"cluster"`` (the
    server's :class:`~repro.cluster.coordinator.ClusterCoordinator`,
    which leases units to registered workers); ``redundancy`` is the
    cluster's r-fold replication level with majority-quorum acceptance.
    """

    scenarios: tuple = ()
    families: tuple = ()
    smoke: bool = False
    base_seed: int = 0
    limit_per_scenario: Optional[int] = None
    replications: int = 1
    executor: str = "local"
    redundancy: int = 1

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "SweepRequest":
        """Build a request from a JSON body, rejecting unknown fields."""
        known = {
            "scenarios",
            "families",
            "smoke",
            "base_seed",
            "limit_per_scenario",
            "replications",
            "executor",
            "redundancy",
        }
        extra = set(obj) - known
        if extra:
            raise ValueError(f"unknown sweep request fields: {sorted(extra)}")
        replications = int(obj.get("replications", 1))
        if replications < 1:
            raise ValueError("replications must be >= 1")
        executor = str(obj.get("executor", "local"))
        if executor not in ("local", "cluster"):
            raise ValueError(
                f"executor must be 'local' or 'cluster', got {executor!r}"
            )
        redundancy = int(obj.get("redundancy", 1))
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        limit = obj.get("limit_per_scenario")
        return cls(
            scenarios=tuple(obj.get("scenarios") or ()),
            families=tuple(obj.get("families") or ()),
            smoke=bool(obj.get("smoke", False)),
            base_seed=int(obj.get("base_seed", 0)),
            limit_per_scenario=None if limit is None else int(limit),
            replications=replications,
            executor=executor,
            redundancy=redundancy,
        )

    def signature(self) -> str:
        """Canonical-JSON identity used for single-flight deduplication."""
        return canonical_json(
            {
                "scenarios": sorted(self.scenarios),
                "families": sorted(self.families),
                "smoke": self.smoke,
                "base_seed": self.base_seed,
                "limit_per_scenario": self.limit_per_scenario,
                "replications": self.replications,
                "executor": self.executor,
                "redundancy": self.redundancy,
            }
        )

    def to_json_obj(self) -> Dict[str, Any]:
        """JSON-ready rendering (echoed back in job status payloads)."""
        return {
            "scenarios": list(self.scenarios),
            "families": list(self.families),
            "smoke": self.smoke,
            "base_seed": self.base_seed,
            "limit_per_scenario": self.limit_per_scenario,
            "replications": self.replications,
            "executor": self.executor,
            "redundancy": self.redundancy,
        }


@dataclass
class Job:
    """One submitted sweep: status, progress counters, and results.

    ``status`` walks ``queued -> running -> done | error``.  Progress
    counters are updated case-by-case from the job's worker thread, so
    polling clients see live completion fractions and cache hit/miss
    splits; ``elapsed`` is the wall-clock of the whole job, which is
    what the warm/cold benchmark rows compare.
    """

    job_id: str
    request: SweepRequest
    status: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total_cases: int = 0
    completed_cases: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    submissions: int = 1
    error: Optional[str] = None
    trace_id: Optional[str] = None
    results: Optional[ResultSet] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def elapsed(self) -> Optional[float]:
        """Wall-clock seconds from start to finish (None until finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True unless the wait timed out."""
        return self._done.wait(timeout)

    async def wait_async(self, timeout: Optional[float] = None) -> bool:
        """Await job completion without blocking the calling event loop.

        The job runs on a worker thread, so the underlying signal is a
        ``threading.Event``; this bridges it through ``run_in_executor``
        so an asyncio caller (e.g. the :mod:`repro.service.aserver`
        event loop) can await it cooperatively.
        """
        if self._done.is_set():
            return True
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._done.wait, timeout)

    def to_json_obj(self) -> Dict[str, Any]:
        """Status payload served by ``GET /v1/jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "request": self.request.to_json_obj(),
            "status": self.status,
            "total_cases": self.total_cases,
            "completed_cases": self.completed_cases,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "submissions": self.submissions,
            "elapsed": self.elapsed,
            "error": self.error,
            "trace_id": self.trace_id,
        }


class JobManager:
    """Owns the job table, the single-flight index, and the process pool.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` consulted before any computation
        and populated afterwards.
    max_workers:
        Pool size for sharding cases.  ``None`` or ``1`` computes cases
        inline on the job's worker thread (best for the small built-in
        grids); larger values lazily start one ``ProcessPoolExecutor``
        that is then reused by every subsequent job.
    max_concurrent_jobs:
        Cap on simultaneously running jobs (each runs on its own worker
        thread); further *distinct* submissions raise
        :class:`TooManyJobsError` (HTTP 503).  Identical submissions
        always join their in-flight job and never hit the cap.
    max_finished_jobs:
        Retention bound: only this many finished jobs (and their result
        sets) are kept for later status/results queries — the oldest are
        evicted first, so a long-lived server's memory stays bounded no
        matter how many sweeps it has served.
    coordinator:
        Optional :class:`~repro.cluster.coordinator.ClusterCoordinator`.
        Sweeps submitted with ``executor="cluster"`` fan their cache
        misses out to its registered workers instead of computing
        locally; without one, such sweeps fail with a clear error.
    cluster_timeout:
        Server-side deadline (seconds) for one cluster-executed sweep.
        A sweep whose quorum can never form — no workers, all
        quarantined — then errors its job and frees the in-flight slot
        instead of wedging it forever.  ``None`` waits without bound.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_workers: Optional[int] = None,
        max_concurrent_jobs: int = 32,
        max_finished_jobs: int = 256,
        coordinator: Optional[Any] = None,
        cluster_timeout: Optional[float] = 3600.0,
    ) -> None:
        self.store = store
        self.max_workers = max_workers
        self.max_concurrent_jobs = int(max_concurrent_jobs)
        self.max_finished_jobs = int(max_finished_jobs)
        self.coordinator = coordinator
        self.cluster_timeout = cluster_timeout
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False
        self._ids = itertools.count(1)
        self.computations = 0
        registry = default_registry()
        self._m_jobs = registry.counter(
            "repro_jobs_submitted_total", "Sweep jobs created (post-dedup)."
        )
        self._m_cases = registry.counter(
            "repro_job_cases_completed_total",
            "Sweep cases finished across all jobs.",
        )
        self._m_hits = registry.counter(
            "repro_job_cache_hits_total", "Sweep cases served from the store."
        )
        self._m_misses = registry.counter(
            "repro_job_cache_misses_total", "Sweep cases that were computed."
        )

    # -- submission ----------------------------------------------------

    def submit(
        self, request: SweepRequest, trace_id: Optional[str] = None
    ) -> Job:
        """Submit a sweep; identical in-flight requests share one job.

        The single-flight check and job creation happen under one lock,
        so N concurrent submissions of the same signature observe
        exactly one ``queued``/``running`` job between them and only the
        first starts a worker thread.  The first submitter's ``trace_id``
        (if any) becomes the job's trace; joiners never overwrite it.
        """
        signature = request.signature()
        with self._lock:
            existing = self._inflight.get(signature)
            if existing is not None:
                existing.submissions += 1
                return existing
            if len(self._inflight) >= self.max_concurrent_jobs:
                raise TooManyJobsError(
                    f"{len(self._inflight)} jobs already running "
                    f"(limit {self.max_concurrent_jobs}); retry later"
                )
            job = Job(
                job_id=f"job-{next(self._ids)}",
                request=request,
                trace_id=trace_id,
            )
            self._jobs[job.job_id] = job
            self._inflight[signature] = job
        self._m_jobs.inc()
        thread = threading.Thread(
            target=self._run_job, args=(job, signature), daemon=True
        )
        thread.start()
        return job

    def _run_job(self, job: Job, signature: str) -> None:
        """Worker-thread body: collect cases, execute, publish, unflight."""
        job.started_at = time.time()
        job.status = "running"
        try:
            request = job.request
            if request.smoke:
                cases = _smoke_case_list(request.base_seed)
            else:
                cases = _collect_cases(
                    list(request.scenarios) or None,
                    list(request.families) or None,
                    request.base_seed,
                    request.limit_per_scenario,
                    request.replications,
                )
            job.total_cases = len(cases)

            def progress(result: ExperimentResult) -> None:
                """Fold one finished case into the job's live counters."""
                job.completed_cases += 1
                self._m_cases.inc()
                if result.cached:
                    job.cache_hits += 1
                    self._m_hits.inc()
                else:
                    job.cache_misses += 1
                    self._m_misses.inc()

            with self._lock:
                self.computations += 1
            executor = None
            if request.executor == "cluster":
                if self.coordinator is None:
                    raise ValueError(
                        "sweep requested executor='cluster' but this server "
                        "has no cluster coordinator (start one with "
                        "'python -m repro.cluster coordinator')"
                    )
                executor = self.coordinator.executor(
                    request.redundancy, timeout=self.cluster_timeout
                )
            # Reactivate the submitting request's trace on this worker
            # thread, so the execution (and, for cluster sweeps, the
            # replicated submit command) joins the same stitched trace.
            with span_for_trace_id(
                "job.run",
                "service",
                job.trace_id,
                attrs={"job_id": job.job_id, "cases": len(cases)},
            ):
                job.results = _execute_cases(
                    cases,
                    base_seed=request.base_seed,
                    executor=executor,
                    # Factory, not a pool: sized on the post-cache miss
                    # count, so a fully-cached job never spawns workers.
                    # Ignored when the cluster executor is set above.
                    executor_factory=self._pool_for,
                    store=self.store,
                    progress=progress,
                )
            job.status = "done"
        except Exception as exc:  # surfaced via the status payload
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "error"
        finally:
            job.finished_at = time.time()
            with self._lock:
                if self._inflight.get(signature) is job:
                    del self._inflight[signature]
                self._evict_finished_locked()
            job._done.set()

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs past the retention bound.

        Called with the manager lock held.  In-flight jobs are never
        evicted, so a job id returned by :meth:`submit` stays queryable
        at least until it finishes.
        """
        finished = [
            job
            for job in sorted(self._jobs.values(), key=lambda j: j.created_at)
            if job.finished_at is not None
        ]
        for job in finished[: max(0, len(finished) - self.max_finished_jobs)]:
            del self._jobs[job.job_id]

    def _pool_for(self, n_pending: int) -> Optional[ProcessPoolExecutor]:
        """The shared pool, lazily started (None means run inline).

        ``n_pending`` is the number of cases that actually need
        computing (cache hits excluded) — one or zero pending cases
        never warrants process-pool overhead.
        """
        if self.max_workers is None or self.max_workers <= 1 or n_pending <= 1:
            return None
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            return self._executor

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Look up one job by id (KeyError lists known ids).

        Snapshot taken under the lock: handler threads query while
        worker threads evict finished jobs, and an unguarded dict walk
        could observe a mid-eviction resize.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            known = ", ".join(sorted(self._jobs)) or "<none>"
        raise KeyError(f"unknown job {job_id!r}; known: {known}")

    def jobs(self) -> List[Job]:
        """Every retained job, oldest first (lock-guarded snapshot)."""
        with self._lock:
            snapshot = list(self._jobs.values())
        return sorted(snapshot, key=lambda j: j.created_at)

    def scenario_listing(self) -> List[Dict[str, Any]]:
        """Registry summary served by ``GET /v1/scenarios``."""
        return [
            {
                "name": spec.name,
                "family": spec.family,
                "n_cases": spec.n_cases,
                "description": spec.description,
            }
            for spec in all_scenarios()
        ]

    def stats(self) -> Dict[str, Any]:
        """Manager counters for the health endpoint."""
        with self._lock:
            return {
                "jobs": len(self._jobs),
                "inflight": len(self._inflight),
                "computations": self.computations,
                "max_workers": self.max_workers,
                "pool_started": self._executor is not None,
            }

    def shutdown(self) -> None:
        """Stop the shared pool (running jobs finish their inline work).

        Idempotent, and terminal: once closed, no later job can lazily
        restart the pool, so a stopped server never leaks worker
        processes (``serve`` calls this from its SIGTERM/close path).
        """
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
