"""Command-line entry point: ``python -m repro.service``.

Subcommands::

    serve    run the HTTP server (blocking)
    submit   submit a sweep to a running server, optionally wait for it
    status   print one job's status (or all jobs)
    fetch    print one cached result blob by content-address key
    solve    solve a small classic game synchronously

Examples::

    python -m repro.service serve --port 8642 --cache-dir .repro-cache
    python -m repro.service submit --family robustness --wait
    python -m repro.service submit --smoke --wait --require-cached
    python -m repro.service status job-1
    python -m repro.service solve --classic matching_pennies --method zerosum
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.results import format_table
from repro.service.aserver import aserve_forever
from repro.service.client import ServiceClient


def _add_url(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--url`` option of the client subcommands."""
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help=(
            "server base URL, or a comma-separated endpoint list for "
            "replicated deployments (default: http://127.0.0.1:8642)"
        ),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the blocking asyncio HTTP server."""
    aserve_forever(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        max_connections=args.max_connections,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep; optionally wait and print the results table."""
    client = ServiceClient(args.url)
    client.wait_until_up(timeout=args.connect_timeout)
    submitted = client.submit_sweep(
        scenarios=args.scenario or None,
        families=args.family or None,
        smoke=args.smoke,
        base_seed=args.seed,
        limit_per_scenario=args.limit,
        replications=args.replications,
    )
    print(json.dumps(submitted, indent=2))
    if not args.wait:
        return 0
    status = client.wait_for_job(submitted["job_id"], timeout=args.timeout)
    print(json.dumps(status, indent=2))
    if status["status"] != "done":
        return 1
    _job, results = client.results(status["job_id"])
    print(
        format_table(
            "wall time by scenario",
            ["scenario", "cases", "cache hits", "total s", "mean ms"],
            results.timing_summary(),
        )
    )
    print(
        f"{len(results)} cases: {status['cache_hits']} cache hits, "
        f"{status['cache_misses']} misses."
    )
    if args.json:
        results.to_json(args.json)
        print(f"JSON written to {args.json}")
    if args.require_cached and status["cache_misses"] > 0:
        print(
            f"error: expected a full cache hit but {status['cache_misses']} "
            "cases were recomputed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Print one job's status payload, or every job's."""
    client = ServiceClient(args.url)
    if args.job_id:
        print(json.dumps(client.job(args.job_id), indent=2))
    else:
        print(json.dumps(client.jobs(), indent=2))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    """Print one cached blob verbatim by its content-address key."""
    client = ServiceClient(args.url)
    sys.stdout.write(client.fetch_bytes(args.key).decode("utf-8"))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    """Solve one small game synchronously and print the solution JSON."""
    client = ServiceClient(args.url)
    body = {"method": args.method}
    if args.classic:
        body["classic"] = args.classic
        if args.n_players is not None:
            body["n_players"] = args.n_players
    else:
        with open(args.game_json, encoding="utf-8") as handle:
            body["game"] = json.load(handle)
    if args.iterations is not None:
        body["iterations"] = args.iterations
    print(json.dumps(client.solve(**body), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve and query experiment sweeps and solvers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP server (blocking)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (recommended)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for sweep cases (default: in-thread)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=4096,
        help="asyncio server keep-alive connection bound (default: 4096)",
    )
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a sweep to a server")
    _add_url(submit)
    submit.add_argument("--scenario", action="append", default=[])
    submit.add_argument("--family", action="append", default=[])
    submit.add_argument(
        "--smoke",
        action="store_true",
        help="one representative case per family",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--limit", type=int, default=None)
    submit.add_argument("--replications", type=int, default=1)
    submit.add_argument(
        "--wait", action="store_true", help="poll until done and print results"
    )
    submit.add_argument("--timeout", type=float, default=600.0)
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=15.0,
        help="seconds to wait for the server to come up",
    )
    submit.add_argument("--json", default=None, help="write results JSON here")
    submit.add_argument(
        "--require-cached",
        action="store_true",
        help="exit nonzero unless every case was a cache hit (CI gate)",
    )
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="print job status")
    _add_url(status)
    status.add_argument("job_id", nargs="?", default=None)
    status.set_defaults(fn=_cmd_status)

    fetch = sub.add_parser("fetch", help="print one cached blob by key")
    _add_url(fetch)
    fetch.add_argument("key")
    fetch.set_defaults(fn=_cmd_fetch)

    solve = sub.add_parser("solve", help="solve a small game synchronously")
    _add_url(solve)
    solve.add_argument("--classic", default=None, help="classic game name")
    solve.add_argument(
        "--game-json", default=None, help="path to a game JSON file"
    )
    solve.add_argument(
        "--method",
        default="pure",
        choices=["pure", "zerosum", "fictitious_play"],
    )
    solve.add_argument("--n-players", type=int, default=None)
    solve.add_argument("--iterations", type=int, default=None)
    solve.set_defaults(fn=_cmd_solve)

    args = parser.parse_args(argv)
    if args.command == "solve" and not args.classic and not args.game_json:
        parser.error("solve needs --classic or --game-json")
    if args.command == "submit" and args.require_cached and not args.wait:
        # Without --wait the hit/miss counts are never checked; a CI
        # gate that silently passes cold runs is worse than an error.
        parser.error("--require-cached needs --wait")
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
