"""Content-addressed result store: sha256 keys, disk blobs, in-process LRU.

Since PR 2 every experiment case is a pure function of
``(scenario, params, base_seed, replication)`` — the per-case seed is
itself derived from those inputs by sha256 — so a finished result can be
cached under a content address and replayed byte-identically forever.
:func:`result_key` is that address: sha256 over a canonical-JSON
rendering of the inputs plus ``code_version``, so bumping the package
version naturally invalidates every cached cell.

:class:`ResultStore` keeps blobs as canonical JSON files under a cache
directory (sharded by key prefix) with an in-process LRU in front.
Writes go through a temp file in the destination directory followed by
``os.replace``, which is atomic on POSIX and Windows — concurrent
writers of the same key can interleave freely and readers always see a
complete blob (one writer's value, never a torn mix).

Operators bound and observe the store with :meth:`ResultStore.prune`
(age/size eviction) and :meth:`ResultStore.stats` (hit/miss counters,
blob count, disk bytes — served over ``GET /v1/store/stats``); the
cluster fabric writes replication-verified results through
:meth:`ResultStore.put_quorum`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Any, BinaryIO, Dict, Iterator, Optional, Tuple

import repro

__all__ = ["canonical_json", "result_key", "ResultStore"]


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON: sorted keys, compact separators.

    The byte-stable rendering used both for key derivation and for the
    on-disk blobs, so "the cached fetch is byte-identical to a cold
    recompute" holds at the file level, not just semantically.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def result_key(
    scenario: str,
    params: Dict[str, Any],
    base_seed: int,
    replication: int = 0,
    code_version: Optional[str] = None,
) -> str:
    """Content address of one experiment case (sha256 hex digest).

    Hashes the canonical JSON of
    ``[scenario, params, base_seed, replication, code_version]``; the
    version defaults to ``repro.__version__`` so results computed by a
    different release never alias.
    """
    if code_version is None:
        code_version = repro.__version__
    payload = canonical_json(
        [scenario, params, int(base_seed), int(replication), code_version]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultStore:
    """Disk-backed, LRU-fronted store of JSON result blobs by content key.

    Parameters
    ----------
    cache_dir:
        Root directory for the blob files (created on demand).  Blobs
        live at ``<cache_dir>/<key[:2]>/<key>.json`` so no single
        directory accumulates millions of entries.
    max_memory_entries:
        LRU capacity; 0 disables the in-process layer entirely.
    code_version:
        Version string mixed into every key (defaults to
        ``repro.__version__``).

    The store is thread-safe: the LRU is guarded by a lock and disk
    writes are atomic renames, so the experiment runner's workers, the
    job manager's threads, and concurrent server processes sharing one
    cache directory all compose.
    """

    def __init__(
        self,
        cache_dir: str,
        max_memory_entries: int = 4096,
        code_version: Optional[str] = None,
    ) -> None:
        self.cache_dir = os.fspath(cache_dir)
        self.max_memory_entries = int(max_memory_entries)
        self.code_version = (
            repro.__version__ if code_version is None else code_version
        )
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        # Serializes the (stat, replace) pair in put(): without it, two
        # racing writers of one fresh key would both observe "absent"
        # and the maintained disk counters would double-count the blob.
        # Blob rendering and temp-file writing stay outside it.
        self._replace_lock = threading.Lock()
        self._disk_count: Optional[int] = None
        self._disk_bytes: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quorum_puts = 0
        self.pruned = 0

    # -- key and path derivation --------------------------------------

    def key_for(
        self,
        scenario: str,
        params: Dict[str, Any],
        base_seed: int,
        replication: int = 0,
    ) -> str:
        """Content address of one case under this store's code version."""
        return result_key(
            scenario, params, base_seed, replication, self.code_version
        )

    def path_for(self, key: str) -> str:
        """Filesystem path of the blob for ``key`` (whether or not it exists)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key: {key!r}")
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    # -- blob access ---------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The blob stored under ``key``, or ``None`` (counts hit/miss).

        Every call returns a *fresh* parse: the LRU holds canonical JSON
        text, never live objects, so a caller mutating a returned blob
        (or the dict it passed to :meth:`put`) can never corrupt what
        later readers see.
        """
        with self._lock:
            text = self._memory.get(key)
            if text is not None:
                self._memory.move_to_end(key)
                self.hits += 1
        if text is not None:
            return json.loads(text)
        try:
            with open(self.path_for(key), encoding="utf-8") as handle:
                text = handle.read()
            blob = json.loads(text)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self._remember(key, text)
        return blob

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The raw on-disk bytes for ``key`` (what HTTP fetch serves).

        Bypasses the LRU so the response is verbatim file content; a
        memory-only entry (possible only with a racing eviction of the
        file, which the store itself never does) falls back to
        re-rendering the blob canonically — the same bytes :meth:`put`
        wrote.
        """
        try:
            with open(self.path_for(key), "rb") as handle:
                return handle.read()
        except OSError:
            blob = self.get(key)
            if blob is None:
                return None
            return (canonical_json(blob) + "\n").encode("utf-8")

    def get_bytes_cached(self, key: str) -> Optional[bytes]:
        """The blob bytes for ``key``, served from the LRU when warm.

        The high-concurrency read path of the async server: the LRU
        holds the exact text :meth:`put` wrote to disk (canonical JSON
        plus one trailing newline), so encoding a memory entry yields
        the same bytes a disk read would — content addressing makes the
        entry immutable, hence infinitely cacheable.  Counts hits and
        misses like :meth:`get`.
        """
        with self._lock:
            text = self._memory.get(key)
            if text is not None:
                self._memory.move_to_end(key)
                self.hits += 1
        if text is not None:
            return text.encode("utf-8")
        try:
            with open(self.path_for(key), "rb") as handle:
                data = handle.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self._remember(key, data.decode("utf-8"))
        return data

    def get_path(self, key: str) -> Optional[str]:
        """The on-disk blob path for ``key`` if one exists, else ``None``.

        The zero-copy handle the async server hands to ``sendfile`` —
        blobs are immutable once written, so the path stays valid until
        an explicit :meth:`prune`.
        """
        path = self.path_for(key)
        return path if os.path.exists(path) else None

    def open_blob(self, key: str) -> Optional[Tuple[BinaryIO, int]]:
        """Open the blob for ``key`` for streaming: ``(file, size)``.

        Returns an open binary file handle plus its byte size, or
        ``None`` when no blob is on disk.  The caller owns the handle
        and must close it; because writes are atomic renames, a handle
        opened here keeps serving the bytes it was opened on even if
        the key is concurrently rewritten or pruned.
        """
        try:
            handle = open(self.path_for(key), "rb")
        except OSError:
            return None
        try:
            size = os.fstat(handle.fileno()).st_size
        except OSError:
            handle.close()
            return None
        return handle, size

    def put(self, key: str, blob: Any) -> str:
        """Store ``blob`` under ``key`` atomically; returns the blob path.

        The blob is written as canonical JSON to a temp file in the
        destination directory and moved into place with ``os.replace``,
        so concurrent writers are safe and readers never observe a
        partial file.
        """
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        text = canonical_json(blob) + "\n"
        data = text.encode("utf-8")
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            with self._replace_lock:
                try:
                    old_size = os.path.getsize(path)
                    existed = True
                except OSError:
                    old_size = 0
                    existed = False
                os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self.puts += 1
            if self._disk_count is not None and not existed:
                self._disk_count += 1
            if self._disk_bytes is not None:
                self._disk_bytes += len(data) - old_size
            self._remember(key, text)
        return path

    def put_quorum(
        self, key: str, blob: Any, votes: int, threshold: int
    ) -> str:
        """Store a replication-verified blob (the cluster's write path).

        ``votes`` is how many distinct workers returned byte-identical
        payloads and ``threshold`` the majority quorum that was required;
        the check is re-asserted here — defensively, so a coordinator
        bug can never poison the content-addressed cache with an
        unverified payload — and the write is counted separately
        (``quorum_puts`` in :meth:`stats`).
        """
        votes, threshold = int(votes), int(threshold)
        if threshold < 1:
            raise ValueError(f"quorum threshold must be >= 1, got {threshold}")
        if votes < threshold:
            raise ValueError(
                f"refusing unverified write: {votes} vote(s) below the "
                f"{threshold}-vote quorum"
            )
        path = self.put(key, blob)
        with self._lock:
            self.quorum_puts += 1
        return path

    def _remember(self, key: str, text: str) -> None:
        """Insert canonical JSON text into the LRU, evicting past capacity.

        Text, not objects: memory hits re-parse, so cached state is
        immune to caller-side mutation of returned/stored blobs.
        """
        if self.max_memory_entries <= 0:
            return
        self._memory[key] = text
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- introspection -------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Iterate over every key currently persisted on disk."""
        if not os.path.isdir(self.cache_dir):
            return
        for shard in sorted(os.listdir(self.cache_dir)):
            shard_dir = os.path.join(self.cache_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".json"):
                    yield entry[: -len(".json")]

    def __len__(self) -> int:
        """Number of blobs persisted on disk."""
        return sum(1 for _ in self.keys())

    def _disk_entries(self):
        """Yield ``(key, path, mtime, size)`` for every persisted blob."""
        for key in self.keys():
            path = self.path_for(key)
            try:
                status = os.stat(path)
            except OSError:
                continue
            yield key, path, status.st_mtime, status.st_size

    def prune(
        self,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Bound the store: drop blobs by age and/or total disk bytes.

        ``max_age_s`` removes every blob whose file mtime is older than
        ``now - max_age_s``; ``max_bytes`` then evicts oldest-first until
        the remaining blobs total at most ``max_bytes``.  Removed keys
        are also purged from the in-process LRU, and the maintained
        ``disk_entries``/``disk_bytes`` counters are decremented by
        exactly what was unlinked — deltas, not a snapshot overwrite,
        so concurrent :meth:`put` traffic is never erased from the
        accounting.  Returns a summary an operator can log
        (``disk_entries``/``disk_bytes`` are the survivors as of the
        scan).
        """
        if now is None:
            now = time.time()
        entries = sorted(self._disk_entries(), key=lambda e: (e[2], e[0]))
        keep = []
        drop = []
        for entry in entries:
            if max_age_s is not None and entry[2] < now - max_age_s:
                drop.append(entry)
            else:
                keep.append(entry)
        if max_bytes is not None:
            total = sum(e[3] for e in keep)
            while keep and total > max_bytes:
                oldest = keep.pop(0)
                total -= oldest[3]
                drop.append(oldest)
        freed = 0
        removed = 0
        removed_keys = []
        for key, path, _mtime, size in drop:
            # Under the replace lock so an unlink can never interleave
            # with put()'s (stat, replace) pair — otherwise a racing
            # writer of the same key would see "existed" for a file this
            # prune is about to delete, and the maintained counters
            # would drift.
            with self._replace_lock:
                try:
                    os.unlink(path)
                except OSError:
                    continue  # still on disk: keep it in the accounting
            removed += 1
            freed += size
            removed_keys.append(key)
        with self._lock:
            for key in removed_keys:
                self._memory.pop(key, None)
            if self._disk_count is not None:
                self._disk_count = max(0, self._disk_count - removed)
            if self._disk_bytes is not None:
                self._disk_bytes = max(0, self._disk_bytes - freed)
            self.pruned += removed
        return {
            "removed": removed,
            "freed_bytes": freed,
            "disk_entries": len(keep),
            "disk_bytes": sum(e[3] for e in keep),
        }

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/put counters plus sizes (the health endpoint payload).

        ``disk_entries`` and ``disk_bytes`` are maintained counters: the
        full directory walk runs once (outside the lock, on the first
        call) and is then kept current by :meth:`put` and :meth:`prune`
        — a health probe polled at high frequency over a huge store must
        not pay an O(blobs) stat sweep per request.  External writers
        sharing the cache directory are therefore reflected only
        approximately.
        """
        with self._lock:
            disk_count = self._disk_count
            disk_bytes = self._disk_bytes
            snapshot = {
                "cache_dir": self.cache_dir,
                "code_version": self.code_version,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "quorum_puts": self.quorum_puts,
                "pruned": self.pruned,
                "memory_entries": len(self._memory),
            }
        if disk_count is None or disk_bytes is None:
            scanned = list(self._disk_entries())
            with self._lock:
                if self._disk_count is None:
                    self._disk_count = len(scanned)
                if self._disk_bytes is None:
                    self._disk_bytes = sum(e[3] for e in scanned)
                disk_count = self._disk_count
                disk_bytes = self._disk_bytes
        snapshot["disk_entries"] = disk_count
        snapshot["disk_bytes"] = disk_bytes
        return snapshot
