"""HTTP client for the service API (urllib only, no dependencies).

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.app` behind typed helpers; server-side failures
surface as :class:`ServiceError` carrying the HTTP status and the
server's error message.  Sweeps come back as real
:class:`~repro.experiments.results.ResultSet` objects, so everything
downstream of the runner (tables, CSV/JSON emit, metric extraction)
works identically on remote results.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.results import ResultSet
from repro.service.jobs import SweepRequest

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(Exception):
    """A failed API call: HTTP status plus the server's error message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Typed access to one running service instance.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8642`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request_bytes(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """One HTTP exchange; raises :class:`ServiceError` on 4xx/5xx."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8"))
            except ValueError:
                message = raw.decode("utf-8", "replace")
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}") from None

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One JSON exchange (decoded response payload)."""
        return json.loads(self._request_bytes(method, path, body))

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` payload."""
        return self._request("GET", "/v1/health")

    def wait_until_up(self, timeout: float = 10.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll health until the server answers (for freshly spawned servers)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(poll)

    def scenarios(self) -> List[Dict[str, Any]]:
        """The server's scenario registry listing."""
        return self._request("GET", "/v1/scenarios")["scenarios"]

    def submit_sweep(
        self,
        scenarios: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        smoke: bool = False,
        base_seed: int = 0,
        limit_per_scenario: Optional[int] = None,
        replications: int = 1,
    ) -> Dict[str, Any]:
        """``POST /v1/sweeps``; returns ``{job_id, status, submissions}``."""
        request = SweepRequest(
            scenarios=tuple(scenarios or ()),
            families=tuple(families or ()),
            smoke=smoke,
            base_seed=base_seed,
            limit_per_scenario=limit_per_scenario,
            replications=replications,
        )
        return self._request("POST", "/v1/sweeps", request.to_json_obj())

    def job(self, job_id: str) -> Dict[str, Any]:
        """One job's status payload."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job's status payload, oldest first."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait_for_job(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job leaves queued/running; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll)

    def results(self, job_id: str) -> Tuple[Dict[str, Any], ResultSet]:
        """A finished job's (status, ResultSet) pair.

        The server ships per-row cache provenance as a parallel array
        (it is transport metadata, never serialized inside the rows);
        it is folded back into ``ExperimentResult.cached`` here.
        """
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        results = ResultSet.from_json_obj(payload["results"])
        for result, cached in zip(results, payload.get("cached", ())):
            result.cached = bool(cached)
        return payload["job"], results

    def run_sweep(self, timeout: float = 300.0, **kwargs) -> Tuple[Dict[str, Any], ResultSet]:
        """Submit, wait, and fetch in one call (the quickstart path)."""
        submitted = self.submit_sweep(**kwargs)
        status = self.wait_for_job(submitted["job_id"], timeout=timeout)
        if status["status"] != "done":
            raise ServiceError(502, f"job failed: {status['error']}")
        return self.results(status["job_id"])

    def fetch_bytes(self, key: str) -> bytes:
        """Verbatim cached blob bytes for one content-address key."""
        return self._request_bytes("GET", f"/v1/results/{key}")

    def fetch(self, key: str) -> Dict[str, Any]:
        """Decoded cached blob for one content-address key."""
        return json.loads(self.fetch_bytes(key))

    def solve(self, **body) -> Dict[str, Any]:
        """``POST /v1/solve`` with the given request fields.

        Examples::

            client.solve(classic="matching_pennies", method="zerosum")
            client.solve(game=game.to_json_obj(), method="pure")
        """
        return self._request("POST", "/v1/solve", body)
