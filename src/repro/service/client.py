"""HTTP client for the service API (urllib only, no dependencies).

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.app` behind typed helpers; server-side failures
surface as :class:`ServiceError` carrying the HTTP status and the
server's error message.  Sweeps come back as real
:class:`~repro.experiments.results.ResultSet` objects, so everything
downstream of the runner (tables, CSV/JSON emit, metric extraction)
works identically on remote results.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.results import ResultSet
from repro.service.jobs import SweepRequest

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(Exception):
    """A failed API call: HTTP status plus the server's error message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Typed access to one running service instance.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8642`` (trailing slash ok).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts for *idempotent* requests (GETs) that die on a
        transient connection error — ``URLError`` refusals or a reset
        mid-read.  POSTs are never retried: a sweep submit or a cluster
        vote that actually landed must not be replayed blindly.
    backoff:
        First retry delay in seconds; doubles per retry, capped at
        ``max_backoff`` (bounded exponential backoff).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        max_backoff: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)

    # -- transport -----------------------------------------------------

    def _request_bytes(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """One HTTP exchange; raises :class:`ServiceError` on 4xx/5xx.

        Idempotent GETs survive transient connection blips: they are
        retried up to ``retries`` times with bounded exponential
        backoff before the failure surfaces as a status-0
        :class:`ServiceError`.
        """
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempts = self.retries + 1 if method == "GET" else 1
        delay = self.backoff
        for attempt in range(attempts):
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                headers=headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                # A real server response — never a transport blip, so
                # never retried.
                raw = exc.read()
                try:
                    message = json.loads(raw).get("error", raw.decode("utf-8"))
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(exc.code, message) from None
            except (urllib.error.URLError, ConnectionResetError) as exc:
                reason = getattr(exc, "reason", exc)
                if attempt + 1 >= attempts:
                    raise ServiceError(
                        0,
                        f"cannot reach {self.base_url} after {attempts} "
                        f"attempt(s): {reason}",
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2.0, self.max_backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One JSON exchange (decoded response payload)."""
        return json.loads(self._request_bytes(method, path, body))

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` payload."""
        return self._request("GET", "/v1/health")

    def wait_until_up(self, timeout: float = 10.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll health until the server answers (for freshly spawned servers)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(poll)

    def scenarios(self) -> List[Dict[str, Any]]:
        """The server's scenario registry listing."""
        return self._request("GET", "/v1/scenarios")["scenarios"]

    def submit_sweep(
        self,
        scenarios: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        smoke: bool = False,
        base_seed: int = 0,
        limit_per_scenario: Optional[int] = None,
        replications: int = 1,
        executor: str = "local",
        redundancy: int = 1,
    ) -> Dict[str, Any]:
        """``POST /v1/sweeps``; returns ``{job_id, status, submissions}``.

        ``executor="cluster"`` fans cache misses out to the server's
        registered cluster workers, with r-fold ``redundancy`` and
        majority-quorum acceptance.
        """
        request = SweepRequest(
            scenarios=tuple(scenarios or ()),
            families=tuple(families or ()),
            smoke=smoke,
            base_seed=base_seed,
            limit_per_scenario=limit_per_scenario,
            replications=replications,
            executor=executor,
            redundancy=redundancy,
        )
        return self._request("POST", "/v1/sweeps", request.to_json_obj())

    def job(self, job_id: str) -> Dict[str, Any]:
        """One job's status payload."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job's status payload, oldest first."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait_for_job(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job leaves queued/running; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll)

    def results(self, job_id: str) -> Tuple[Dict[str, Any], ResultSet]:
        """A finished job's (status, ResultSet) pair.

        The server ships per-row cache provenance as a parallel array
        (it is transport metadata, never serialized inside the rows);
        it is folded back into ``ExperimentResult.cached`` here.
        """
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        results = ResultSet.from_json_obj(payload["results"])
        for result, cached in zip(results, payload.get("cached", ())):
            result.cached = bool(cached)
        return payload["job"], results

    def run_sweep(self, timeout: float = 300.0, **kwargs) -> Tuple[Dict[str, Any], ResultSet]:
        """Submit, wait, and fetch in one call (the quickstart path)."""
        submitted = self.submit_sweep(**kwargs)
        status = self.wait_for_job(submitted["job_id"], timeout=timeout)
        if status["status"] != "done":
            raise ServiceError(502, f"job failed: {status['error']}")
        return self.results(status["job_id"])

    def fetch_bytes(self, key: str) -> bytes:
        """Verbatim cached blob bytes for one content-address key."""
        return self._request_bytes("GET", f"/v1/results/{key}")

    def fetch(self, key: str) -> Dict[str, Any]:
        """Decoded cached blob for one content-address key."""
        return json.loads(self.fetch_bytes(key))

    def store_stats(self) -> Dict[str, Any]:
        """``GET /v1/store/stats``: hit/miss counters, blob count, bytes."""
        return self._request("GET", "/v1/store/stats")

    # -- cluster endpoints ---------------------------------------------

    def cluster(self) -> Dict[str, Any]:
        """``GET /v1/cluster``: scheduler counters plus worker registry."""
        return self._request("GET", "/v1/cluster")

    def register_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/workers``: register a worker; returns its id.

        Together with :meth:`lease` and :meth:`complete` this mirrors
        the coordinator's in-process surface, so a
        :class:`repro.cluster.worker.Worker` can use this client as its
        transport unchanged.
        """
        return self._request("POST", "/v1/workers", {"name": name})

    def lease(self, worker_id: str) -> Dict[str, Any]:
        """``POST /v1/lease``: request the next work unit for a worker."""
        return self._request("POST", "/v1/lease", {"worker_id": worker_id})

    def complete(
        self, worker_id: str, unit_id: str, rows: Sequence[Any]
    ) -> Dict[str, Any]:
        """``POST /v1/complete``: post a unit's result rows (quorum vote)."""
        return self._request(
            "POST",
            "/v1/complete",
            {"worker_id": worker_id, "unit_id": unit_id, "rows": list(rows)},
        )

    def solve(self, **body) -> Dict[str, Any]:
        """``POST /v1/solve`` with the given request fields.

        Examples::

            client.solve(classic="matching_pennies", method="zerosum")
            client.solve(game=game.to_json_obj(), method="pure")
        """
        return self._request("POST", "/v1/solve", body)
