"""HTTP client for the service API (stdlib only, no dependencies).

:class:`ServiceClient` wraps the JSON endpoints of
:mod:`repro.service.app` behind typed helpers; server-side failures
surface as :class:`ServiceError` carrying the HTTP status and the
server's error message.  Sweeps come back as real
:class:`~repro.experiments.results.ResultSet` objects, so everything
downstream of the runner (tables, CSV/JSON emit, metric extraction)
works identically on remote results.

The transport is a **keep-alive** ``http.client.HTTPConnection`` —
one persistent TCP connection per calling thread (the client is shared
across threads in tests and in the cluster workers), with transparent
reconnect when a reused connection turns out to have been closed by
the server between requests.  Content-addressed fetches carry an
``If-None-Match`` header once a key has been seen, so warm re-fetches
cost a 304 with zero body bytes (see :meth:`ServiceClient.fetch_bytes`).

Against a **replicated control plane** the client takes every replica
URL (list, or one comma-separated string) and fails over by itself:

* a transport error on the preferred endpoint rotates to the next one
  (for GETs and explicitly idempotent POSTs — the cluster-protocol
  writes are idempotent by design, so a worker survives its
  coordinator being SIGKILLed mid-request);
* a **421 Misdirected Request** answer (a write hit a follower) is
  chased to the leader URL in the response body without consuming a
  retry — mid-election answers without a hint rotate and back off
  briefly until the new leader emerges.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.results import ResultSet
from repro.obs.logs import log_event
from repro.obs.trace import (
    HEADER,
    SpanRecorder,
    activate,
    current_context,
    format_header,
    new_trace,
    span,
)
from repro.service.jobs import SweepRequest

__all__ = ["ServiceError", "ServiceClient"]

# Symptoms of the keep-alive race: the server closed an idle persistent
# connection after we decided to reuse it.  No response bytes were ever
# received, so replaying the request on a fresh connection is safe for
# any method — the server provably never started processing a reply.
_STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.CannotSendRequest,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class ServiceError(Exception):
    """A failed API call: HTTP status plus the server's error message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Typed access to one running service instance.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8642`` (trailing slash
        ok).  For a replicated fabric, pass every replica — a list of
        URLs or one comma-separated string — and the client fails over
        between them by itself.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts for *idempotent* requests (GETs, and the POSTs
        the endpoint helpers explicitly mark — cluster-protocol writes,
        consensus RPCs, content-deduplicated sweep submissions) that
        die on a transient connection error.  Each retry rotates to the
        next configured endpoint first.  Other POSTs are never retried:
        a write that actually landed must not be replayed blindly.
        (Separately from this policy, *any* method is replayed once
        when a **reused** keep-alive connection turns out to be stale —
        the server closed it idle before our bytes arrived, so nothing
        was processed.)
    backoff:
        First retry delay in seconds; doubles per retry, capped at
        ``max_backoff`` (bounded exponential backoff).
    etag_cache_size:
        Blobs kept in the client-side ETag cache for
        :meth:`fetch_bytes` (content-addressed, so never stale).
    """

    def __init__(
        self,
        base_url: Union[str, Sequence[str]],
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        max_backoff: float = 2.0,
        etag_cache_size: int = 256,
    ) -> None:
        if isinstance(base_url, str):
            urls = [u for u in base_url.split(",") if u.strip()]
        else:
            urls = list(base_url)
        if not urls:
            raise ValueError("ServiceClient needs at least one endpoint URL")
        self.endpoints = [u.strip().rstrip("/") for u in urls]
        self._endpoint_lock = threading.Lock()
        self._preferred = 0
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.etag_cache_size = int(etag_cache_size)
        self.etag_hits = 0
        self._etag_cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._cache_lock = threading.Lock()
        # Visibility counters for the retry/failover machinery
        # (snapshot via :meth:`stats`), plus this client's own span
        # buffer — pushed to a server with :meth:`push_spans` so fleet
        # scrapes can stitch client-side spans into a trace.
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._retries = 0
        self._replays = 0
        self._redirects_followed = 0
        self.last_trace_id: Optional[str] = None
        self._recorder = SpanRecorder(capacity=512)
        # One persistent connection per calling thread: http.client
        # connections are not thread-safe, and tests drive one client
        # from many threads at once.
        self._local = threading.local()

    # -- endpoint selection --------------------------------------------

    @property
    def base_url(self) -> str:
        """The currently preferred endpoint (the last known-good one)."""
        with self._endpoint_lock:
            return self.endpoints[self._preferred]

    def _rotate_endpoint(self, failed: str) -> None:
        """Advance past ``failed`` — unless another thread already did."""
        with self._endpoint_lock:
            if self.endpoints[self._preferred] == failed:
                self._preferred = (self._preferred + 1) % len(self.endpoints)

    def _prefer_endpoint(self, url: str) -> None:
        """Pin the preferred endpoint to a server-provided leader hint."""
        url = url.rstrip("/")
        with self._endpoint_lock:
            if url not in self.endpoints:
                self.endpoints.append(url)
            self._preferred = self.endpoints.index(url)

    # -- transport -----------------------------------------------------

    def _connect(self, endpoint: str) -> http.client.HTTPConnection:
        """Open (and remember) a fresh connection for this thread.

        Nagle is disabled: on a keep-alive connection a coalescing
        delay on small request writes interacts with the peer's
        delayed ACK and turns into a per-request latency floor.
        """
        split = urllib.parse.urlsplit(endpoint)
        conn = http.client.HTTPConnection(
            split.hostname or "127.0.0.1",
            split.port or 80,
            timeout=self.timeout,
        )
        conn.connect()
        try:
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, True
            )
        except OSError:  # pragma: no cover - non-TCP transports
            pass
        self._local.conn = conn
        self._local.endpoint = endpoint
        return conn

    def _drop_connection(self) -> None:
        """Close and forget this thread's cached connection, if any."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        self._local.endpoint = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close() best effort
                pass

    def close(self) -> None:
        """Close this thread's persistent connection (it reopens lazily)."""
        self._drop_connection()

    def _exchange(
        self,
        endpoint: str,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, Any, bytes]:
        """One request/response on the thread's keep-alive connection.

        Returns ``(status, response_headers, body)``.  A *reused*
        connection that fails with a stale-socket symptom (the server
        closed it idle; no response bytes were received) is replaced
        and the request replayed once — transparent reconnect.  Errors
        on a fresh connection propagate to the caller's retry policy.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "endpoint", None) != endpoint:
            self._drop_connection()  # preferred endpoint moved
            conn = None
        reused = conn is not None
        if conn is None:
            conn = self._connect(endpoint)
        while True:
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                body = response.read()
            except _STALE_CONNECTION_ERRORS:
                self._drop_connection()
                if not reused:
                    raise
                reused = False
                with self._stats_lock:
                    self._replays += 1
                conn = self._connect(endpoint)
                continue
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                raise
            if response.will_close:
                self._drop_connection()
            return response.status, response.headers, body

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        extra_headers: Optional[Dict[str, str]] = None,
        idempotent: bool = False,
    ) -> Tuple[int, Any, bytes]:
        """One HTTP exchange; raises :class:`ServiceError` on 4xx/5xx.

        Three failure modes, three policies:

        * **transport errors** — retried up to ``retries`` extra times
          for GETs and ``idempotent`` POSTs, rotating to the next
          endpoint before each attempt with bounded exponential
          backoff, then surfaced as a status-0 :class:`ServiceError`;
        * **421 Misdirected Request** — the write hit a follower
          replica; the leader hint from the body is chased (or, with no
          hint mid-election, endpoints are rotated after a short pause)
          on a budget separate from transport retries, so elections
          don't eat the failure budget;
        * **other error statuses** — real server answers, surfaced
          immediately and never retried.
        """
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        ctx = current_context()
        if ctx is not None:
            headers[HEADER] = format_header(ctx)
        if extra_headers:
            headers.update(extra_headers)
        with self._stats_lock:
            self._requests += 1
        attempts = (
            self.retries + 1 if (method == "GET" or idempotent) else 1
        )
        transport_left = attempts
        leader_left = 2 * len(self.endpoints) + 2
        delay = self.backoff
        while True:
            endpoint = self.base_url
            try:
                status, resp_headers, raw = self._exchange(
                    endpoint, method, path, data, headers
                )
            except (OSError, http.client.HTTPException) as exc:
                transport_left -= 1
                if transport_left <= 0:
                    raise ServiceError(
                        0,
                        f"cannot reach {endpoint} after {attempts} "
                        f"attempt(s): {exc}",
                    ) from None
                with self._stats_lock:
                    self._retries += 1
                log_event(
                    "client.failover",
                    "client",
                    endpoint=endpoint,
                    path=path,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts_left=transport_left,
                )
                self._rotate_endpoint(endpoint)
                time.sleep(delay)
                delay = min(delay * 2.0, self.max_backoff)
                continue
            if status == 421:
                try:
                    payload = json.loads(raw)
                except ValueError:
                    payload = {}
                leader_left -= 1
                if leader_left <= 0:
                    raise ServiceError(
                        421,
                        payload.get("error", "not the leader")
                        + " (no leader emerged within the failover budget)",
                    )
                leader = payload.get("leader")
                if leader and leader.rstrip("/") != endpoint:
                    with self._stats_lock:
                        self._redirects_followed += 1
                    log_event(
                        "client.redirect",
                        "client",
                        endpoint=endpoint,
                        leader=leader,
                        path=path,
                    )
                    self._prefer_endpoint(leader)
                else:
                    # Mid-election: no leader yet (or the hint points
                    # back at the answering follower).  Rotate and give
                    # the election a beat to finish.
                    self._rotate_endpoint(endpoint)
                    time.sleep(min(max(self.backoff, 0.05), 0.25))
                continue
            if status >= 400:
                # A real server response — never a transport blip, so
                # never retried.
                try:
                    message = json.loads(raw).get("error", raw.decode("utf-8"))
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(status, message)
            return status, resp_headers, raw

    def _request_bytes(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        idempotent: bool = False,
    ) -> bytes:
        """One HTTP exchange returning the raw response body."""
        return self._request_raw(method, path, body, idempotent=idempotent)[2]

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        idempotent: bool = False,
    ) -> Any:
        """One JSON exchange (decoded response payload)."""
        return json.loads(
            self._request_bytes(method, path, body, idempotent=idempotent)
        )

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the client's transport-visibility counters.

        ``requests`` is every :meth:`_request_raw` call; ``retries``
        counts transport-error failovers to another endpoint;
        ``replays`` counts transparent single replays on a stale
        keep-alive connection; ``redirects_followed`` counts 421 leader
        hints chased; ``etag_hits`` counts 304-validated cache reads.
        """
        with self._stats_lock:
            snapshot = {
                "requests": self._requests,
                "retries": self._retries,
                "replays": self._replays,
                "redirects_followed": self._redirects_followed,
            }
        with self._cache_lock:
            snapshot["etag_hits"] = self.etag_hits
        snapshot["last_trace_id"] = self.last_trace_id
        return snapshot

    def push_spans(self, spans: Optional[List[Dict[str, Any]]] = None) -> int:
        """Best-effort push of finished spans to a server.

        Drains the client-local span buffer (or takes an explicit list
        of span dicts — workers hand over theirs) into
        ``POST /v1/trace`` so a fleet scrape can stitch client-side
        spans into the trace.  Returns how many spans the server
        ingested; transport failures drop the batch (spans are
        diagnostics, never worth a crash).
        """
        if spans is None:
            spans = self._recorder.drain()
        if not spans:
            return 0
        try:
            reply = self._request(
                "POST", "/v1/trace", {"spans": spans}, idempotent=True
            )
            return int(reply.get("ingested", 0))
        except (ServiceError, OSError, ValueError):
            return 0

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` payload."""
        return self._request("GET", "/v1/health")

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """``GET /v1/trace/<id>``: this server's spans for one trace."""
        return self._request("GET", f"/v1/trace/{trace_id}")

    def events(self) -> Dict[str, Any]:
        """``GET /v1/events``: this server's recent structured events."""
        return self._request("GET", "/v1/events")

    def wait_until_up(self, timeout: float = 10.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll health until the server answers (for freshly spawned servers)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(poll)

    def scenarios(self) -> List[Dict[str, Any]]:
        """The server's scenario registry listing."""
        return self._request("GET", "/v1/scenarios")["scenarios"]

    def submit_sweep(
        self,
        scenarios: Optional[Sequence[str]] = None,
        families: Optional[Sequence[str]] = None,
        smoke: bool = False,
        base_seed: int = 0,
        limit_per_scenario: Optional[int] = None,
        replications: int = 1,
        executor: str = "local",
        redundancy: int = 1,
    ) -> Dict[str, Any]:
        """``POST /v1/sweeps``; returns ``{job_id, status, submissions}``.

        ``executor="cluster"`` fans cache misses out to the server's
        registered cluster workers, with r-fold ``redundancy`` and
        majority-quorum acceptance.

        Submission is retried across endpoints on transport failure:
        the job manager single-flights identical requests and the
        replicated coordinator deduplicates sweeps by content hash, so
        a replayed submit joins existing work instead of doubling it.
        """
        request = SweepRequest(
            scenarios=tuple(scenarios or ()),
            families=tuple(families or ()),
            smoke=smoke,
            base_seed=base_seed,
            limit_per_scenario=limit_per_scenario,
            replications=replications,
            executor=executor,
            redundancy=redundancy,
        )
        # Every submission runs inside a trace: join the caller's if one
        # is active, otherwise start a fresh root.  The trace id rides
        # the X-Repro-Trace header into the server and (for cluster
        # sweeps) the replicated submit command, linking client, leader,
        # and workers into one stitched trace.
        root = current_context() or new_trace()
        self.last_trace_id = root.trace_id
        with activate(root):
            with span(
                "client.submit_sweep",
                "client",
                recorder=self._recorder,
                attrs={"executor": request.executor},
            ):
                return self._request(
                    "POST", "/v1/sweeps", request.to_json_obj(), idempotent=True
                )

    def job(self, job_id: str) -> Dict[str, Any]:
        """One job's status payload."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job's status payload, oldest first."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def wait_for_job(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job leaves queued/running; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll)

    def results(self, job_id: str) -> Tuple[Dict[str, Any], ResultSet]:
        """A finished job's (status, ResultSet) pair.

        The server ships per-row cache provenance as a parallel array
        (it is transport metadata, never serialized inside the rows);
        it is folded back into ``ExperimentResult.cached`` here.
        """
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        results = ResultSet.from_json_obj(payload["results"])
        for result, cached in zip(results, payload.get("cached", ())):
            result.cached = bool(cached)
        return payload["job"], results

    def run_sweep(self, timeout: float = 300.0, **kwargs) -> Tuple[Dict[str, Any], ResultSet]:
        """Submit, wait, and fetch in one call (the quickstart path).

        Failover-aware end to end: jobs live in one server's manager,
        so if that server dies mid-sweep (or answers "unknown job"
        after a failover, or the job dies of a leadership change) the
        sweep is *resubmitted* to the surviving endpoints until the
        deadline.  Resubmission is safe — identical requests
        single-flight in the manager, and on the replicated fabric the
        sweep attaches by content hash to whatever units the previous
        leader's quorum already accepted, so no finished work repeats.
        """
        deadline = time.monotonic() + timeout
        retriable = ("not the leader", "leadership", "no commit quorum")
        root = current_context() or new_trace()
        self.last_trace_id = root.trace_id
        try:
            with activate(root), span(
                "client.run_sweep", "client", recorder=self._recorder
            ):
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"sweep still unfinished after {timeout}s"
                        )
                    try:
                        submitted = self.submit_sweep(**kwargs)
                        status = self.wait_for_job(
                            submitted["job_id"], timeout=remaining
                        )
                        if status["status"] != "done":
                            error = str(status.get("error") or "")
                            if any(marker in error for marker in retriable):
                                time.sleep(0.2)
                                continue  # leadership moved: resubmit
                            raise ServiceError(
                                502, f"job failed: {status['error']}"
                            )
                        return self.results(status["job_id"])
                    except ServiceError as exc:
                        transient = exc.status in (0, 421) or (
                            exc.status == 404 and "job" in exc.message
                        )
                        if not transient:
                            raise
                        time.sleep(0.2)
        finally:
            self.push_spans()

    def fetch_bytes(self, key: str) -> bytes:
        """Verbatim cached blob bytes for one content-address key.

        Once a key has been fetched, re-fetches send
        ``If-None-Match: "<key>"`` and a 304 answer is served from the
        client-side cache with zero body bytes on the wire — safe
        because a content address can only ever name one payload.
        ``etag_hits`` counts the 304s.
        """
        with self._cache_lock:
            cached = self._etag_cache.get(key)
            if cached is not None:
                self._etag_cache.move_to_end(key)
        extra = {"If-None-Match": f'"{key}"'} if cached is not None else None
        status, _headers, raw = self._request_raw(
            "GET", f"/v1/results/{key}", extra_headers=extra
        )
        if status == 304 and cached is not None:
            with self._cache_lock:
                self.etag_hits += 1
            return cached
        with self._cache_lock:
            self._etag_cache[key] = raw
            self._etag_cache.move_to_end(key)
            while len(self._etag_cache) > self.etag_cache_size:
                self._etag_cache.popitem(last=False)
        return raw

    def fetch(self, key: str) -> Dict[str, Any]:
        """Decoded cached blob for one content-address key."""
        return json.loads(self.fetch_bytes(key))

    def fetch_batch(
        self, keys: Sequence[str]
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """``POST /v1/results:batch``: N cached blobs in one round trip.

        Returns ``{key: decoded_blob_or_None}`` — ``None`` marks keys
        the store does not hold.  The response is newline-delimited
        JSON, one object per requested key, streamed by the async
        server without materializing the full payload.
        """
        _status, _headers, raw = self._request_raw(
            "POST", "/v1/results:batch", {"keys": list(keys)}, idempotent=True
        )
        out: Dict[str, Optional[Dict[str, Any]]] = {}
        for line in raw.splitlines():
            if not line.strip():
                continue
            entry = json.loads(line)
            out[entry["key"]] = entry.get("result") if entry["found"] else None
        return out

    def store_stats(self) -> Dict[str, Any]:
        """``GET /v1/store/stats``: hit/miss counters, blob count, bytes."""
        return self._request("GET", "/v1/store/stats")

    # -- cluster endpoints ---------------------------------------------

    def cluster(self) -> Dict[str, Any]:
        """``GET /v1/cluster``: scheduler counters plus worker registry."""
        return self._request("GET", "/v1/cluster")

    def register_worker(
        self, name: Optional[str] = None, worker_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """``POST /v1/workers``: register a worker; returns its id.

        Together with :meth:`lease` and :meth:`complete` this mirrors
        the coordinator's in-process surface, so a
        :class:`repro.cluster.worker.Worker` can use this client as its
        transport unchanged.  Passing an explicit ``worker_id``
        re-registers idempotently (same identity, strikes preserved) —
        the worker-failover path after a coordinator crash.
        """
        return self._request(
            "POST",
            "/v1/workers",
            {"name": name, "worker_id": worker_id},
            idempotent=True,
        )

    def lease(self, worker_id: str) -> Dict[str, Any]:
        """``POST /v1/lease``: request the next work unit for a worker.

        Idempotent for retry purposes: a replayed lease at worst grants
        (and promptly expires) one extra lease — never corrupts quorum
        accounting — so it rides the endpoint-failover retry policy.
        """
        return self._request(
            "POST", "/v1/lease", {"worker_id": worker_id}, idempotent=True
        )

    def complete(
        self, worker_id: str, unit_id: str, rows: Sequence[Any]
    ) -> Dict[str, Any]:
        """``POST /v1/complete``: post a unit's result rows (quorum vote).

        Idempotent: a replayed completion is answered ``duplicate`` (or
        ``stale``) by the coordinator — one worker can never
        double-vote — so it rides the endpoint-failover retry policy.
        """
        return self._request(
            "POST",
            "/v1/complete",
            {"worker_id": worker_id, "unit_id": unit_id, "rows": list(rows)},
            idempotent=True,
        )

    def raft_rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/raft/rpc``: one consensus message; reply rides back.

        Replica-to-replica transport only.  Deliberately *not* marked
        idempotent here — the consensus layer has its own
        retransmission (heartbeats), so a transport error surfaces
        immediately and the sender's next beat carries fresher state.
        """
        return self._request("POST", "/v1/raft/rpc", dict(message))

    def raft_status(self) -> Dict[str, Any]:
        """``GET /v1/raft/status``: the replica's consensus-level status."""
        return self._request("GET", "/v1/raft/status")

    def solve(self, **body) -> Dict[str, Any]:
        """``POST /v1/solve`` with the given request fields.

        Examples::

            client.solve(classic="matching_pennies", method="zerosum")
            client.solve(game=game.to_json_obj(), method="pure")
        """
        return self._request("POST", "/v1/solve", body, idempotent=True)
