"""Serving layer: content-addressed result cache + experiment/solver API.

PR 2 made every experiment case a pure function of
``(scenario, params, base_seed, replication)``; this package exploits
that purity to turn the batch reproduction into a queryable system:

* :mod:`repro.service.store` — :class:`~repro.service.store.ResultStore`,
  a content-addressed result cache (sha256 keys over canonical JSON,
  disk blobs behind an in-process LRU, atomic temp-file/rename writes).
* :mod:`repro.service.jobs` — :class:`~repro.service.jobs.JobManager`,
  asynchronous sweep jobs with single-flight dedup of identical
  in-flight requests and a persistent process pool for the misses.
* :mod:`repro.service.app` — the transport-agnostic
  :class:`~repro.service.app.ServiceAPI` JSON routing core (scenarios,
  sweep submit/poll/fetch, cached-blob fetch by key with ETag/304, an
  NDJSON ``/v1/results:batch``, and a synchronous ``/v1/solve`` for
  small normal-form games).
* :mod:`repro.service.aserver` — the asyncio server: one event loop
  multiplexing thousands of pipelined keep-alive connections, zero-copy
  blob responses, graceful SIGTERM drain.
* :mod:`repro.service.client` — a keep-alive
  :class:`~repro.service.client.ServiceClient` mirroring the endpoints,
  with multi-endpoint failover for replicated deployments.
* :mod:`repro.service.solve` — the JSON game-solving dispatch shared by
  the server and any embedding caller.

With a :class:`repro.cluster.coordinator.ClusterCoordinator` attached
(``python -m repro.cluster coordinator``) — or a replicated
:class:`repro.cluster.replica.Replica` (``python -m repro.cluster
replica``) — the same server also speaks the compute-fabric protocol:
worker registration, work-unit leases, quorum-voted completions, and
(replicas only) the ``/v1/raft/*`` consensus channel (see
:mod:`repro.cluster`).

``python -m repro.service`` drives it from the shell::

    python -m repro.service serve --port 8642 --cache-dir .repro-cache
    python -m repro.service submit --family robustness --wait
    python -m repro.service status job-1
    python -m repro.service fetch <sha256-key>
"""

from repro.service.aserver import aserve_forever, start_async_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager, SweepRequest
from repro.service.solve import solve_request
from repro.service.store import ResultStore, canonical_json, result_key

__all__ = [
    "Job",
    "JobManager",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "SweepRequest",
    "aserve_forever",
    "canonical_json",
    "result_key",
    "solve_request",
    "start_async_server",
]
