"""Asyncio high-concurrency HTTP core for the service API.

One event loop multiplexes thousands of keep-alive connections on one
core — the serving-layer analogue of the paper's asynchronous
message-passing model, where progress never depends on one participant
(here: one OS thread per socket) being scheduled.  Route handling is
delegated entirely to the transport-agnostic
:class:`~repro.service.app.ServiceAPI`; this module is the sole HTTP
transport and owns everything around it:

* **Hand-rolled HTTP/1.1 protocol** (``asyncio.Protocol``, not
  streams): request parsing works directly on the connection's byte
  buffer, and responses for pipelined requests are coalesced into one
  ``transport.write`` — many requests per syscall in both directions.
* **Request pipelining**: a client may write N requests back-to-back;
  responses come back in order on the same connection.
* **Bounded keep-alive**: at most ``max_connections`` sockets (503 +
  close beyond that), with an idle sweeper closing connections that
  have gone quiet for ``keep_alive_timeout`` seconds.
* **Event loop ↔ pool bridge**: ``GET``/``HEAD`` run inline on the
  loop (they are dict lookups over in-memory state); ``POST`` handlers
  — sweep submission, LP solving, cluster lease/complete with their
  locks and store writes — run through ``loop.run_in_executor`` on a
  small thread pool, so the accept loop never blocks on CPU-bound or
  disk-bound work.  Sweeps themselves keep running on the
  :class:`~repro.service.jobs.JobManager`'s worker threads and its
  persistent ``ProcessPoolExecutor``, exactly as before.
* **Zero-copy blobs**: responses carrying a ``blob_path`` are served
  with ``loop.sendfile`` (chunked streaming with backpressure as the
  fallback), so large cached results never transit Python bytes.
* **Graceful drain**: SIGTERM stops the accept socket, lets in-flight
  requests finish (bounded by ``drain_timeout``), then closes
  connections and shuts the job manager down with nothing leaked.

Entry points: :func:`start_async_server` (background thread,
tests/embedding) and :func:`aserve_forever` (blocking CLI path behind
``python -m repro.service serve``).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Tuple

from repro.experiments.results import format_table
from repro.obs.metrics import default_registry
from repro.obs.trace import activate, parse_header, span
from repro.service.app import (
    _MAX_BODY_BYTES,
    ApiResponse,
    ServiceAPI,
    build_manager,
)
from repro.service.jobs import JobManager
from repro.service.store import ResultStore

__all__ = [
    "AsyncServiceServer",
    "AsyncServerHandle",
    "start_async_server",
    "aserve_forever",
]

_MAX_HEADER_BYTES = 64 * 1024
# Flush the coalesced-response buffer once it holds this many bytes;
# large enough to amortize syscalls over a pipelined burst, small
# enough to keep per-connection memory bounded.
_FLUSH_BYTES = 256 * 1024
_SENDFILE_CHUNK = 256 * 1024

_REASONS = {
    200: b"OK",
    202: b"Accepted",
    304: b"Not Modified",
    400: b"Bad Request",
    404: b"Not Found",
    409: b"Conflict",
    411: b"Length Required",
    413: b"Payload Too Large",
    421: b"Misdirected Request",
    431: b"Request Header Fields Too Large",
    500: b"Internal Server Error",
    502: b"Bad Gateway",
    503: b"Service Unavailable",
}


def _status_line(status: int) -> bytes:
    """The ``HTTP/1.1 <code> <reason>\\r\\n`` line for a status code."""
    reason = _REASONS.get(status)
    if reason is None:
        reason = b"Unknown"
    return b"HTTP/1.1 %d %s\r\n" % (status, reason)


# Route templates for metric labels: parameterized segments collapse
# (``/v1/jobs/job-7`` -> ``/v1/jobs/{id}``) and unknown paths fold into
# one bucket, so label cardinality stays bounded no matter what clients
# send.
_LITERAL_ROUTES = frozenset(
    {
        "/v1/health",
        "/v1/scenarios",
        "/v1/jobs",
        "/v1/sweeps",
        "/v1/results:batch",
        "/v1/solve",
        "/v1/workers",
        "/v1/lease",
        "/v1/complete",
        "/v1/cluster",
        "/v1/raft/rpc",
        "/v1/raft/status",
        "/v1/store/stats",
        "/v1/metrics",
        "/v1/trace",
        "/v1/events",
        "/v1/watch/status",
        "/v1/watch/query",
        "/v1/watch/dash",
    }
)


def _route_template(path: str) -> str:
    """The bounded-cardinality route label for a request path."""
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path in _LITERAL_ROUTES:
        return path
    parts = path.split("/")
    # ['', 'v1', 'jobs', '<id>'] / ['', 'v1', 'jobs', '<id>', 'results']
    if len(parts) >= 4 and parts[1] == "v1":
        if parts[2] == "jobs":
            return "/v1/jobs/{id}/results" if len(parts) == 5 else "/v1/jobs/{id}"
        if parts[2] == "results":
            return "/v1/results/{key}"
        if parts[2] == "trace":
            return "/v1/trace/{id}"
    return "other"


class _HttpProtocol(asyncio.Protocol):
    """One keep-alive HTTP/1.1 connection on the event loop.

    ``data_received`` appends to a byte buffer and (re)schedules the
    processing task; the task parses as many complete requests as the
    buffer holds, dispatching each and coalescing their responses into
    one write.  Because the loop is single-threaded, parsing state
    needs no locks — new bytes only interleave at ``await`` points,
    after which the parse loop simply continues.
    """

    __slots__ = (
        "server",
        "api",
        "loop",
        "transport",
        "buffer",
        "last_active",
        "_task",
        "_can_write",
        "_closed",
    )

    def __init__(self, server: "AsyncServiceServer") -> None:
        self.server = server
        self.api = server.api
        self.loop = server.loop
        self.transport: Optional[asyncio.Transport] = None
        self.buffer = bytearray()
        self.last_active = 0.0
        self._task: Optional[asyncio.Task] = None
        self._can_write = asyncio.Event()
        self._can_write.set()
        self._closed = False

    # -- connection lifecycle ------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        """Register the connection; refuse past the connection bound."""
        self.transport = transport  # type: ignore[assignment]
        self.last_active = self.loop.time()
        connections = self.server.connections
        if (
            len(connections) >= self.server.max_connections
            or self.server.draining
        ):
            body = b'{"error": "connection limit reached"}\n'
            transport.write(  # type: ignore[union-attr]
                _status_line(503)
                + b"Content-Type: application/json\r\n"
                + b"Content-Length: %d\r\n" % len(body)
                + b"Connection: close\r\n\r\n"
                + body
            )
            transport.close()  # type: ignore[union-attr]
            self._closed = True
            return
        connections.add(self)

    def connection_lost(self, exc: Optional[Exception]) -> None:
        """Drop the connection from the server's registry."""
        self.server.connections.discard(self)
        self._closed = True
        self._can_write.set()  # unblock a writer awaiting drain

    def pause_writing(self) -> None:
        """Transport buffer above high water: block response writers."""
        self._can_write.clear()

    def resume_writing(self) -> None:
        """Transport buffer drained below low water: unblock writers."""
        self._can_write.set()

    def eof_received(self) -> bool:
        """Client closed its write side; finish in-flight work, close."""
        return False  # let the transport close

    def data_received(self, data: bytes) -> None:
        """Buffer bytes and ensure exactly one processing task runs."""
        self.buffer += data
        self.last_active = self.loop.time()
        if self._task is None or self._task.done():
            self._task = self.loop.create_task(self._process())

    # -- request processing --------------------------------------------

    async def _drain(self) -> None:
        """Respect transport backpressure before writing more."""
        if not self._can_write.is_set():
            await self._can_write.wait()

    def _flush(self, out: List[bytes]) -> None:
        """Write the coalesced response bytes in one syscall."""
        if out and not self._closed:
            self.transport.write(b"".join(out))  # type: ignore[union-attr]
            out.clear()

    async def _process(self) -> None:
        """Parse and serve every complete request currently buffered."""
        out: List[bytes] = []
        out_bytes = 0
        try:
            while not self._closed:
                parsed = self._parse_one(out)
                if parsed is None:
                    break
                method, path, if_none_match, body, close_after, trace = parsed
                ctx = parse_header(trace) if trace else None
                started = self.loop.time()
                if method in ("GET", "HEAD"):
                    # In-memory lookups: cheaper to run inline than to
                    # round-trip a thread pool.
                    if ctx is None:
                        response = self.api.handle(
                            method, path, b"", if_none_match
                        )
                    else:
                        response = self._handle_traced(
                            ctx, method, path, b"", if_none_match
                        )
                else:
                    # POSTs take locks, solve LPs, write blobs: off the
                    # loop so a slow one never stalls other sockets.
                    self._flush(out)
                    out_bytes = 0
                    if ctx is None:
                        response = await self.loop.run_in_executor(
                            self.server.executor,
                            self.api.handle,
                            method,
                            path,
                            body,
                            if_none_match,
                        )
                    else:
                        # run_in_executor does not propagate
                        # contextvars: hand the parsed context across
                        # the thread boundary explicitly.
                        response = await self.loop.run_in_executor(
                            self.server.executor,
                            self._handle_traced,
                            ctx,
                            method,
                            path,
                            body,
                            if_none_match,
                        )
                self.server.observe_request(
                    path, response.status, self.loop.time() - started
                )
                if self._closed:
                    return
                out_bytes += await self._write_response(
                    response, method == "HEAD", close_after, out
                )
                if close_after:
                    self._flush(out)
                    self.transport.close()  # type: ignore[union-attr]
                    self._closed = True
                    return
                if out_bytes >= _FLUSH_BYTES:
                    self._flush(out)
                    out_bytes = 0
                    await self._drain()
        finally:
            self._flush(out)
            self.last_active = self.loop.time()
            if self.server.draining and not self._closed:
                # New requests are not welcome once draining started.
                self.transport.close()  # type: ignore[union-attr]
                self._closed = True

    def _handle_traced(
        self,
        ctx,
        method: str,
        path: str,
        body: bytes,
        if_none_match: Optional[str],
    ) -> ApiResponse:
        """Serve one request with its inbound trace context active.

        Separate from the untraced fast path so requests without an
        ``X-Repro-Trace`` header never pay for context switching or
        span recording.
        """
        with activate(ctx):
            with span(
                f"http {method} {_route_template(path)}",
                "service",
                attrs={"path": path},
            ):
                return self.api.handle(method, path, body, if_none_match)

    def _parse_one(
        self, out: List[bytes]
    ) -> Optional[Tuple[str, str, Optional[str], bytes, bool, Optional[str]]]:
        """Parse one complete request off the buffer, or ``None``.

        Returns ``(method, path, if_none_match, body, close_after,
        trace_header)``.  Malformed or oversized requests are answered
        directly (via ``out``) with the connection marked for close.
        """
        buf = self.buffer
        head_end = buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(buf) > _MAX_HEADER_BYTES:
                self._error_close(out, 431, "request headers too large")
            return None
        if head_end > _MAX_HEADER_BYTES:
            # Complete but oversized head: same verdict as an unbounded
            # one, reached via a different arrival pattern.
            self._error_close(out, 431, "request headers too large")
            return None
        head = bytes(buf[:head_end])
        lines = head.split(b"\r\n")
        try:
            method_b, target_b, version_b = lines[0].split(b" ", 2)
        except ValueError:
            self._error_close(out, 400, "malformed request line")
            return None
        content_length = 0
        if_none_match: Optional[str] = None
        trace_header: Optional[str] = None
        connection = b""
        chunked = False
        for line in lines[1:]:
            name, sep, value = line.partition(b":")
            if not sep:
                continue
            lowered = name.strip().lower()
            if lowered == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    self._error_close(out, 400, "malformed Content-Length")
                    return None
            elif lowered == b"if-none-match":
                if_none_match = value.strip().decode("latin-1")
            elif lowered == b"connection":
                connection = value.strip().lower()
            elif lowered == b"transfer-encoding":
                chunked = True
            elif lowered == b"x-repro-trace":
                trace_header = value.strip().decode("latin-1")
        if chunked:
            self._error_close(
                out, 411, "chunked request bodies are unsupported"
            )
            return None
        if content_length > _MAX_BODY_BYTES:
            self._error_close(out, 413, "request body too large")
            return None
        total = head_end + 4 + content_length
        if len(buf) < total:
            return None
        body = bytes(buf[head_end + 4 : total])
        del buf[:total]
        close_after = connection == b"close" or (
            version_b == b"HTTP/1.0" and connection != b"keep-alive"
        )
        return (
            method_b.decode("latin-1"),
            target_b.decode("latin-1"),
            if_none_match,
            body,
            close_after,
            trace_header,
        )

    def _error_close(self, out: List[bytes], status: int, message: str) -> None:
        """Queue an error response and mark the connection closed.

        Used for protocol-level failures where resynchronizing the
        byte stream is impossible or not worth it (oversized bodies,
        garbled framing): answer once, then drop the connection.
        """
        body = ('{"error": "%s"}\n' % message).encode("utf-8")
        out.append(
            _status_line(status)
            + b"Content-Type: application/json\r\n"
            + b"Content-Length: %d\r\n" % len(body)
            + b"Connection: close\r\n\r\n"
            + body
        )
        self._flush(out)
        self.transport.close()  # type: ignore[union-attr]
        self._closed = True

    async def _write_response(
        self,
        response: ApiResponse,
        head_only: bool,
        close_after: bool,
        out: List[bytes],
    ) -> int:
        """Queue (or stream) one response; returns queued byte count."""
        header = [
            _status_line(response.status),
            b"Content-Type: ",
            response.content_type.encode("latin-1"),
            b"\r\n",
        ]
        if response.etag is not None:
            header += [b"ETag: ", response.etag.encode("latin-1"), b"\r\n"]
        header += [b"Content-Length: %d\r\n" % response.content_length]
        if close_after:
            header.append(b"Connection: close\r\n")
        header.append(b"\r\n")
        head = b"".join(header)
        if head_only or response.status == 304:
            out.append(head)
            return len(head)
        if response.blob_path is not None:
            out.append(head)
            self._flush(out)
            await self._sendfile(response)
            return 0
        if response.chunks is not None and response.content_length >= _FLUSH_BYTES:
            # Large streamed response: write header + chunks with
            # backpressure instead of materializing one giant buffer.
            out.append(head)
            self._flush(out)
            for chunk in response.chunks:
                if self._closed:
                    return 0
                self.transport.write(chunk)  # type: ignore[union-attr]
                await self._drain()
            return 0
        out.append(head)
        out.append(response.body)
        return len(head) + len(response.body)

    async def _sendfile(self, response: ApiResponse) -> None:
        """Zero-copy the blob file into the socket (streamed fallback).

        ``loop.sendfile`` hands the file to the kernel; transports that
        cannot (or a file that shrank mid-flight) fall back to chunked
        reads with backpressure.  Content-Length was already declared,
        so a short file forces a close to keep framing honest.
        """
        try:
            handle = open(response.blob_path, "rb")  # type: ignore[arg-type]
        except OSError:
            self.transport.close()  # type: ignore[union-attr]
            self._closed = True
            return
        sent = 0
        try:
            await self._drain()
            try:
                sent = await self.loop.sendfile(
                    self.transport, handle, count=response.blob_size
                )
            except (NotImplementedError, RuntimeError, AttributeError):
                handle.seek(0)
                while sent < response.blob_size and not self._closed:
                    chunk = handle.read(
                        min(_SENDFILE_CHUNK, response.blob_size - sent)
                    )
                    if not chunk:
                        break
                    self.transport.write(chunk)  # type: ignore[union-attr]
                    sent += len(chunk)
                    await self._drain()
        except (ConnectionError, OSError):
            self._closed = True
            return
        finally:
            handle.close()
        if sent != response.blob_size and not self._closed:
            self.transport.close()  # type: ignore[union-attr]
            self._closed = True


class AsyncServiceServer:
    """The asyncio service server: accept loop, registry, drain logic.

    Owns the :class:`~repro.service.app.ServiceAPI` core, the bounded
    connection registry, the POST-offload thread pool, and its
    :class:`JobManager`'s lifecycle: :meth:`drain` shuts the manager
    (and its persistent process pool) down after the last in-flight
    request finishes.
    """

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 4096,
        keep_alive_timeout: float = 300.0,
        drain_timeout: float = 10.0,
        quiet: bool = True,
        registry=None,
        watchdog=None,
    ) -> None:
        self.manager = manager
        self.registry = registry if registry is not None else default_registry()
        self.api = ServiceAPI(manager, registry=self.registry, watchdog=watchdog)
        self.host = host
        self.port = port
        self.max_connections = int(max_connections)
        self.keep_alive_timeout = float(keep_alive_timeout)
        self.drain_timeout = float(drain_timeout)
        self.quiet = quiet
        self.connections: set = set()
        self.draining = False
        self.executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="aserver-post"
        )
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.server_address: Tuple[str, int] = (host, port)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._lag_probe: Optional[asyncio.Task] = None
        # Metric families, with per-(route, status) children cached in
        # plain dicts so the request hot path is one dict hit + one
        # int add per metric (and pure no-ops under a null registry).
        self._m_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served.",
            labels=["route", "status"],
        )
        self._m_latency = self.registry.histogram(
            "repro_http_request_seconds",
            "Request handling latency by route.",
            labels=["route"],
        )
        self._m_lag = self.registry.histogram(
            "repro_event_loop_lag_seconds",
            "Event-loop scheduling lag sampled by the probe task.",
        )
        self.registry.gauge(
            "repro_http_open_connections", "Open keep-alive connections."
        ).set_fn(lambda: len(self.connections))
        self._obs_children: dict = {}

    def observe_request(self, path: str, status: int, seconds: float) -> None:
        """Fold one served request into the route/status metrics.

        The bound (inc, observe) pair is cached per raw ``(path,
        status)`` so the steady-state cost is one dict hit, one int
        add, and one bisect — route templating runs only on first
        sight of a path.  The cache is cleared if an adversarial key
        stream grows it past a bound; the children themselves stay
        bounded by route template regardless.  This method only runs
        on the event-loop thread, so the lock-free single-writer
        variants are safe.
        """
        if not self.registry.enabled:
            return
        key = (path, status)
        pair = self._obs_children.get(key)
        if pair is None:
            route = _route_template(path)
            pair = (
                self._m_requests.labels(route, str(status)).inc_unlocked,
                self._m_latency.labels(route).observe_unlocked,
            )
            if len(self._obs_children) >= 4096:
                self._obs_children.clear()
            self._obs_children[key] = pair
        inc, observe = pair
        inc()
        observe(seconds)

    async def start(self) -> "AsyncServiceServer":
        """Bind the listening socket and start the idle sweeper."""
        self.loop = asyncio.get_running_loop()
        self._server = await self.loop.create_server(
            lambda: _HttpProtocol(self),
            self.host,
            self.port,
            backlog=2048,
        )
        self.server_address = self._server.sockets[0].getsockname()[:2]
        self._sweeper = self.loop.create_task(self._sweep_idle())
        if self.registry.enabled:
            self._lag_probe = self.loop.create_task(self._probe_loop_lag())
        return self

    async def _probe_loop_lag(self) -> None:
        """Sample event-loop scheduling lag into its histogram.

        Sleeps a fixed interval and records how far past the requested
        wake-up the loop actually ran the task — the canonical measure
        of a loop starved by a slow inline handler.
        """
        interval = 0.25
        while True:
            target = self.loop.time() + interval
            await asyncio.sleep(interval)
            lag = self.loop.time() - target
            if lag > 0.0:
                self._m_lag.observe(lag)

    async def _sweep_idle(self) -> None:
        """Close keep-alive connections idle past the timeout."""
        interval = max(1.0, min(self.keep_alive_timeout / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            cutoff = self.loop.time() - self.keep_alive_timeout
            for conn in list(self.connections):
                busy = conn._task is not None and not conn._task.done()
                if not busy and conn.last_active < cutoff:
                    conn.transport.close()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Idempotent.  In-flight request handlers get up to
        ``drain_timeout`` seconds to complete (their responses are
        written before the socket closes); idle connections close
        immediately; finally the POST pool and the job manager — with
        its persistent process pool — are shut down.
        """
        if self.draining:
            return
        self.draining = True
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._lag_probe is not None:
            self._lag_probe.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        busy = [
            conn._task
            for conn in list(self.connections)
            if conn._task is not None and not conn._task.done()
        ]
        if busy:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*busy, return_exceptions=True),
                    self.drain_timeout,
                )
            except asyncio.TimeoutError:
                pass  # overdue handlers lose their connection below
        for conn in list(self.connections):
            conn.transport.close()
        await asyncio.sleep(0)  # let close callbacks run
        self.executor.shutdown(wait=False)
        self.manager.shutdown()


class AsyncServerHandle:
    """Thread-hosted async server handle for tests and embedders.

    Exposes ``server_address``, ``manager``, ``shutdown()`` (graceful
    drain), and ``server_close()`` (idempotent manager/pool teardown +
    thread join).  Built by :func:`start_async_server`.
    """

    def __init__(
        self, server: AsyncServiceServer, loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def server_address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (ephemeral port resolved)."""
        return self._server.server_address

    @property
    def manager(self) -> JobManager:
        """The owned job manager (jobs, store, optional coordinator)."""
        return self._server.manager

    def shutdown(self) -> None:
        """Drain gracefully and stop the event loop (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self._server.drain(), self._loop
        )
        try:
            future.result(timeout=self._server.drain_timeout + 15.0)
        except Exception:
            future.cancel()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def server_close(self) -> None:
        """Finish teardown; safe to call after (or without) shutdown."""
        self.shutdown()
        self._server.manager.shutdown()


def start_async_server(
    host: str = "127.0.0.1",
    port: int = 0,
    manager: Optional[JobManager] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    coordinator: Optional[Any] = None,
    quiet: bool = True,
    **server_options,
) -> Tuple[AsyncServerHandle, threading.Thread]:
    """Start the asyncio server on a background thread.

    Returns ``(handle, thread)``; the handle exposes
    ``server_address``/``manager``/``shutdown``/``server_close``.
    Extra ``server_options`` (``max_connections``,
    ``keep_alive_timeout``, ``drain_timeout``) pass through to
    :class:`AsyncServiceServer`.
    """
    built_manager = build_manager(manager, store, max_workers, coordinator)
    server = AsyncServiceServer(
        built_manager, host=host, port=port, quiet=quiet, **server_options
    )
    ready = threading.Event()
    boot_error: List[BaseException] = []
    loop = asyncio.new_event_loop()

    def _run() -> None:
        """Thread body: bind, signal readiness, serve until stopped."""
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surfaced to the caller below
            boot_error.append(exc)
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=_run, name="aserver-loop", daemon=True
    )
    thread.start()
    ready.wait(timeout=30.0)
    if boot_error:
        raise boot_error[0]
    return AsyncServerHandle(server, loop, thread), thread


def aserve_forever(
    host: str = "127.0.0.1",
    port: int = 8642,
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    quiet: bool = False,
    store: Optional[ResultStore] = None,
    coordinator: Optional[Any] = None,
    max_connections: int = 4096,
    keep_alive_timeout: float = 300.0,
    drain_timeout: float = 10.0,
    watchdog: Optional[Any] = None,
) -> None:
    """Blocking asyncio entry point behind ``python -m repro.service serve``.

    SIGTERM and SIGINT both trigger the graceful drain: the accept
    socket closes first, in-flight requests get ``drain_timeout``
    seconds to finish, then connections, the POST pool, the job
    manager, and its process pool shut down — ``kill <pid>`` exits 0
    with nothing leaked.
    """
    if store is None and cache_dir is not None:
        store = ResultStore(cache_dir)
    manager = build_manager(
        None, store=store, max_workers=max_workers, coordinator=coordinator
    )
    server = AsyncServiceServer(
        manager,
        host=host,
        port=port,
        max_connections=max_connections,
        keep_alive_timeout=keep_alive_timeout,
        drain_timeout=drain_timeout,
        quiet=quiet,
        watchdog=watchdog,
    )

    async def _main() -> None:
        """Start, announce, wait for a stop signal, drain."""
        await server.start()
        actual_host, actual_port = server.server_address
        rows = [
            ["url", f"http://{actual_host}:{actual_port}"],
            ["server", "asyncio (event loop, pipelined keep-alive)"],
            ["cache_dir", cache_dir or "<none: recompute every case>"],
            ["max_workers", max_workers or 1],
            ["max_connections", max_connections],
        ]
        if coordinator is not None:
            stats = coordinator.stats()
            rows.append(["cluster", f"redundancy={stats['redundancy']}"])
        print(format_table("repro.service", ["setting", "value"], rows))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        import signal as _signal

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread / platform without signal support
        try:
            await stop.wait()
        finally:
            await server.drain()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        manager.shutdown()  # idempotent; covers interrupt-before-drain
