"""Unit tests for repro.games.repeated and repro.games.classics."""

import numpy as np
import pytest

from repro.games.classics import (
    bargaining_game,
    coordination_01_game,
    prisoners_dilemma,
    prisoners_dilemma_prose,
    primality_game,
    roshambo,
)
from repro.games.repeated import (
    FunctionStrategy,
    RepeatedGame,
    discounted_total,
)
from repro.machines.strategies import AlwaysDefect, TitForTat


class TestDiscounting:
    def test_discounted_total_one_round(self):
        assert discounted_total([10.0], 0.5) == pytest.approx(5.0)

    def test_discounted_total_matches_paper_indexing(self):
        # sum_{m=1..N} delta^m r_m with r = (1, 1): delta + delta^2
        assert discounted_total([1.0, 1.0], 0.9) == pytest.approx(0.9 + 0.81)

    def test_no_discounting(self):
        assert discounted_total([1.0, 2.0, 3.0], 1.0) == pytest.approx(6.0)


class TestRepeatedGame:
    def test_mutual_tft_cooperates_forever(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=10)
        result = game.play(TitForTat(), TitForTat())
        assert all(actions == (0, 0) for actions in result.actions)
        np.testing.assert_allclose(result.totals, [30.0, 30.0])

    def test_tft_punishes_defector(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=3)
        result = game.play(TitForTat(), AlwaysDefect())
        assert result.actions == [(0, 1), (1, 1), (1, 1)]

    def test_discounted_payoffs(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=2, delta=0.5)
        result = game.play(TitForTat(), TitForTat())
        # 3 each round: 0.5*3 + 0.25*3 = 2.25
        np.testing.assert_allclose(result.discounted, [2.25, 2.25])

    def test_function_strategy(self):
        always_one = FunctionStrategy(lambda h: 1, name="d")
        game = RepeatedGame(prisoners_dilemma(), rounds=4)
        result = game.play(always_one, always_one)
        assert all(actions == (1, 1) for actions in result.actions)

    def test_invalid_action_rejected(self):
        bad = FunctionStrategy(lambda h: 7)
        game = RepeatedGame(prisoners_dilemma(), rounds=1)
        with pytest.raises(ValueError):
            game.play(bad, TitForTat())

    def test_rejects_non_two_player_stage(self):
        with pytest.raises(ValueError):
            RepeatedGame(coordination_01_game(3), rounds=2)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            RepeatedGame(prisoners_dilemma(), rounds=2, delta=0.0)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            RepeatedGame(prisoners_dilemma(), rounds=0)


class TestClassicGames:
    def test_pd_matrix_as_printed(self):
        game = prisoners_dilemma()
        assert game.payoff_vector((0, 0)).tolist() == [3.0, 3.0]
        assert game.payoff_vector((0, 1)).tolist() == [-5.0, 5.0]
        assert game.payoff_vector((1, 0)).tolist() == [5.0, -5.0]
        assert game.payoff_vector((1, 1)).tolist() == [-3.0, -3.0]

    def test_pd_prose_variant(self):
        game = prisoners_dilemma_prose()
        assert game.payoff_vector((1, 1)).tolist() == [1.0, 1.0]
        assert game.pure_nash_equilibria() == [(1, 1)]

    def test_defection_dominates_in_both_variants(self):
        for game in (prisoners_dilemma(), prisoners_dilemma_prose()):
            assert game.dominated_actions(0) == [0]

    def test_roshambo_payoff_rule(self):
        game = roshambo()
        # i = j ⊕ 1 means player 1 wins: (1, 0) -> paper beats rock.
        assert game.payoff(0, (1, 0)) == 1.0
        assert game.payoff(0, (0, 1)) == -1.0
        assert game.payoff(0, (2, 2)) == 0.0
        assert game.is_zero_sum()

    def test_coordination_01_payoffs(self):
        game = coordination_01_game(4)
        assert game.payoff_vector((0, 0, 0, 0)).tolist() == [1.0] * 4
        assert game.payoff_vector((1, 1, 0, 0)).tolist() == [2.0, 2.0, 0.0, 0.0]
        assert game.payoff_vector((1, 1, 1, 0)).tolist() == [0.0] * 4

    def test_bargaining_payoffs(self):
        game = bargaining_game(3)
        assert game.payoff_vector((0, 0, 0)).tolist() == [2.0] * 3
        assert game.payoff_vector((1, 0, 0)).tolist() == [1.0, 0.0, 0.0]

    def test_bargaining_all_stay_pareto_optimal(self):
        game = bargaining_game(3)
        assert game.is_pareto_optimal_pure((0, 0, 0))

    def test_primality_game_payoffs(self):
        prime_game = primality_game(is_prime=True)
        assert prime_game.payoff(0, (0,)) == 10.0
        assert prime_game.payoff(0, (1,)) == -10.0
        assert prime_game.payoff(0, (2,)) == 1.0
        # Unique Nash: answer correctly.
        assert prime_game.pure_nash_equilibria() == [(0,)]

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            coordination_01_game(1)
