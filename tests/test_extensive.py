"""Unit tests for repro.games.extensive."""

import numpy as np
import pytest

from repro.games.classics import figure1_game
from repro.games.extensive import ExtensiveFormGame, TerminalNode


def entry_game() -> ExtensiveFormGame:
    """Classic entry deterrence: entrant in/out, incumbent fight/accommodate."""
    g = ExtensiveFormGame(2, name="entry")
    g.add_decision((), player=0, moves=("out", "enter"))
    g.add_terminal(("out",), (0.0, 2.0))
    g.add_decision(("enter",), player=1, moves=("fight", "accommodate"))
    g.add_terminal(("enter", "fight"), (-1.0, -1.0))
    g.add_terminal(("enter", "accommodate"), (1.0, 1.0))
    return g.finalize()


def coin_game() -> ExtensiveFormGame:
    """Nature flips a coin, player guesses without seeing it."""
    g = ExtensiveFormGame(1, name="coin guess")
    g.add_chance((), {"heads": 0.5, "tails": 0.5})
    g.add_decision(("heads",), player=0, moves=("H", "T"), infoset="guess")
    g.add_decision(("tails",), player=0, moves=("H", "T"), infoset="guess")
    for flip in ("heads", "tails"):
        for guess in ("H", "T"):
            correct = (flip == "heads") == (guess == "H")
            g.add_terminal((flip, guess), (1.0 if correct else 0.0,))
    return g.finalize()


class TestConstruction:
    def test_figure1_builds(self):
        g = figure1_game()
        assert len(g.terminal_histories()) == 3
        assert g.max_depth() == 2

    def test_duplicate_history_rejected(self):
        g = ExtensiveFormGame(1)
        g.add_decision((), player=0, moves=("a",))
        with pytest.raises(ValueError):
            g.add_terminal((), (0.0,))

    def test_missing_child_rejected_at_finalize(self):
        g = ExtensiveFormGame(1)
        g.add_decision((), player=0, moves=("a", "b"))
        g.add_terminal(("a",), (0.0,))
        with pytest.raises(ValueError):
            g.finalize()

    def test_orphan_history_rejected(self):
        g = ExtensiveFormGame(1)
        g.add_decision((), player=0, moves=("a",))
        g.add_terminal(("a",), (0.0,))
        with pytest.raises(ValueError):
            g.add_terminal(("zzz", "deep"), (0.0,))
            g.finalize()

    def test_payoff_arity_checked(self):
        g = ExtensiveFormGame(2)
        g.add_decision((), player=0, moves=("a",))
        with pytest.raises(ValueError):
            g.add_terminal(("a",), (0.0,))

    def test_infoset_move_consistency(self):
        g = ExtensiveFormGame(1)
        g.add_chance((), {"x": 0.5, "y": 0.5})
        g.add_decision(("x",), player=0, moves=("a", "b"), infoset="I")
        with pytest.raises(ValueError):
            g.add_decision(("y",), player=0, moves=("a",), infoset="I")

    def test_chance_distribution_validated(self):
        g = ExtensiveFormGame(1)
        with pytest.raises(ValueError):
            g.add_chance((), {"x": 0.5, "y": 0.7})

    def test_finalized_games_immutable(self):
        g = entry_game()
        with pytest.raises(RuntimeError):
            g.add_terminal(("new",), (0.0, 0.0))


class TestIntrospection:
    def test_information_sets_by_player(self):
        g = entry_game()
        assert len(g.information_sets(0)) == 1
        assert len(g.information_sets(1)) == 1

    def test_perfect_information_detection(self):
        assert entry_game().has_perfect_information()
        assert not coin_game().has_perfect_information()

    def test_infoset_of(self):
        g = coin_game()
        info = g.infoset_of(("heads",))
        assert info.label == "guess"
        assert set(info.histories) == {("heads",), ("tails",)}

    def test_pure_strategy_enumeration(self):
        g = entry_game()
        assert len(list(g.pure_strategies(0))) == 2
        assert len(list(g.pure_strategies(1))) == 2


class TestEvaluation:
    def test_outcome_distribution_pure(self):
        g = entry_game()
        profile = [
            g.behavioral_from_pure(0, {"I:root": "enter"}),
            g.behavioral_from_pure(1, {"I:enter": "accommodate"}),
        ]
        dist = g.outcome_distribution(profile)
        assert dist == {("enter", "accommodate"): 1.0}

    def test_outcome_distribution_with_chance(self):
        g = coin_game()
        profile = [g.behavioral_from_pure(0, {"guess": "H"})]
        dist = g.outcome_distribution(profile)
        assert dist[("heads", "H")] == pytest.approx(0.5)
        assert dist[("tails", "H")] == pytest.approx(0.5)

    def test_expected_payoffs_mixed(self):
        g = coin_game()
        profile = [g.uniform_behavioral(0)]
        assert g.expected_payoff(0, profile) == pytest.approx(0.5)

    def test_probabilities_sum_to_one(self):
        g = figure1_game()
        profile = [g.uniform_behavioral(0), g.uniform_behavioral(1)]
        assert sum(g.outcome_distribution(profile).values()) == pytest.approx(1.0)


class TestEquilibrium:
    def test_backward_induction_entry_game(self):
        g = entry_game()
        profile, values = g.backward_induction()
        assert profile[1]["I:enter"]["accommodate"] == 1.0
        assert profile[0]["I:root"]["enter"] == 1.0
        np.testing.assert_allclose(values, [1.0, 1.0])

    def test_backward_induction_figure1(self):
        g = figure1_game()
        profile, values = g.backward_induction()
        assert profile[1]["B"]["down_B"] == 1.0
        assert profile[0]["A"]["across_A"] == 1.0
        np.testing.assert_allclose(values, [2.0, 2.0])

    def test_backward_induction_requires_perfect_info(self):
        with pytest.raises(ValueError):
            coin_game().backward_induction()

    def test_is_nash_subgame_perfect_profile(self):
        g = figure1_game()
        profile, _ = g.backward_induction()
        assert g.is_nash(profile)

    def test_non_equilibrium_detected(self):
        g = entry_game()
        profile = [
            g.behavioral_from_pure(0, {"I:root": "out"}),
            g.behavioral_from_pure(1, {"I:enter": "accommodate"}),
        ]
        # Entrant should enter (1 > 0) when incumbent accommodates.
        assert not g.is_nash(profile)
        assert g.regret(0, profile) == pytest.approx(1.0)

    def test_figure1_nash_with_across_down(self):
        g = figure1_game()
        profile = [
            g.behavioral_from_pure(0, {"A": "across_A"}),
            g.behavioral_from_pure(1, {"B": "down_B"}),
        ]
        assert g.is_nash(profile)


class TestNormalFormConversion:
    def test_to_normal_form_shape(self):
        g = entry_game()
        normal, strategies = g.to_normal_form()
        assert normal.num_actions == (2, 2)
        assert len(strategies[0]) == 2

    def test_normal_form_equilibria_include_tree_nash(self):
        g = figure1_game()
        normal, strategies = g.to_normal_form()
        pure = normal.pure_nash_equilibria()
        # Find (across_A, down_B) among the pure normal-form equilibria.
        found = False
        for combo in pure:
            s0 = strategies[0][combo[0]]
            s1 = strategies[1][combo[1]]
            if s0["A"] == "across_A" and s1["B"] == "down_B":
                found = True
        assert found

    def test_chance_payoffs_in_normal_form(self):
        g = coin_game()
        normal, _ = g.to_normal_form()
        np.testing.assert_allclose(normal.payoffs[0], [0.5, 0.5])
