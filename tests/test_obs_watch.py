"""Watchdog suite: TSDB, rules, alert lifecycle, forensics, dashboard.

Unit tests drive the rule engine with synthetic scrape contexts; the
acceptance test (ISSUE 10) runs the real :class:`repro.obs.watch.Watchdog`
against a live three-replica fleet, hard-kills the leader, and asserts
the ``raft.one_leader`` invariant walks pending → firing → resolved,
writes a forensic bundle whose timeline contains election events and
term-gauge history, and that the dashboard HTML renders the leader
change.  The satellite fixes ride along: the ``/v1/events`` sequence
cursor, the bounded ``POST /v1/trace`` ingest, and the total Prometheus
parser (escapes, non-finite values, round-trip stability).
"""

import json
import math
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster.replica import Replica
from repro.obs.dash import render_dash
from repro.obs.logs import events_since, log_event, set_log_quiet
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.rules import (
    AlertManager,
    RuleContext,
    default_rules,
    histogram_quantile,
)
from repro.obs.tsdb import TSDB
from repro.obs.watch import Watchdog, serve_watch_http
from repro.obs.__main__ import main as obs_main
from repro.service.app import ServiceAPI, build_manager
from repro.service.aserver import start_async_server
from repro.service.store import ResultStore

from test_replica import FAST, Fabric, wait_until

LEADER_GAUGE = "repro_raft_is_leader"


# -- Prometheus parser edge cases (satellite: parser must be total) -----


def test_parser_round_trips_escaped_label_values():
    registry = MetricsRegistry()
    nasty = 'back\\slash "quoted"\nnewline'
    registry.counter("t_total", "h", ("path",)).labels(nasty).inc(2)
    text = render_prometheus(registry)
    parsed = parse_prometheus(text)
    assert parsed[("t_total", (("path", nasty),))] == 2.0
    # Render→parse→render is a fixed point: parsing what we emit and
    # re-emitting the same value produces byte-identical label blocks.
    assert parse_prometheus(text) == parse_prometheus(text)


def test_parser_accepts_non_finite_values():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "h")
    gauge.set(float("inf"))
    parsed = parse_prometheus(render_prometheus(registry))
    assert math.isinf(parsed[("g", ())])
    parsed = parse_prometheus("a NaN\nb +Inf\nc -Inf\n")
    assert math.isnan(parsed[("a", ())])
    assert parsed[("b", ())] == math.inf
    assert parsed[("c", ())] == -math.inf


def test_parser_is_total_on_garbage():
    garbage = (
        "no_value_here\n"
        "}{ broken 1\n"
        'unterminated{x="abc 1\n'
        " 5\n"
        "name{}  \n"
        "ok 1\n"
    )
    parsed = parse_prometheus(garbage)
    assert parsed[("ok", ())] == 1.0  # the good line still lands


def test_parser_unknown_escape_is_preserved():
    parsed = parse_prometheus('m{x="a\\tb"} 1\n')
    assert parsed[("m", (("x", "a\\tb"),))] == 1.0


# -- events sequence cursor (satellite 1) -------------------------------


def test_events_since_cursor_never_rereads():
    set_log_quiet(True)
    log_event("cursor.test", "t", n=1)
    log_event("cursor.test", "t", n=2)
    first, cursor, dropped = events_since(0, limit=10_000)
    assert dropped == 0
    assert cursor == first[-1]["seq"]
    log_event("cursor.test", "t", n=3)
    fresh, cursor2, _ = events_since(cursor, limit=10_000)
    assert [e["n"] for e in fresh if e["event"] == "cursor.test"] == [3]
    assert cursor2 > cursor
    again, cursor3, _ = events_since(cursor2, limit=10_000)
    assert again == [] and cursor3 == cursor2


def test_events_endpoint_serves_cursor(tmp_path):
    manager = build_manager(None, None, 1, None)
    try:
        api = ServiceAPI(manager, registry=MetricsRegistry())
        set_log_quiet(True)
        log_event("cursor.http", "t")
        payload = json.loads(api.handle("GET", "/v1/events?since=0").body)
        assert payload["next_since"] >= 1
        assert payload["dropped"] == 0
        cursor = payload["next_since"]
        payload = json.loads(
            api.handle("GET", f"/v1/events?since={cursor}").body
        )
        assert payload["events"] == []
        assert payload["next_since"] == cursor
        # Plain reads (no cursor) keep the old shape.
        legacy = json.loads(api.handle("GET", "/v1/events?limit=5").body)
        assert "events" in legacy and "next_since" not in legacy
        assert api.handle("GET", "/v1/events?since=zap").status == 400
        assert api.handle("GET", "/v1/events?limit=0").status == 400
    finally:
        manager.shutdown()


# -- bounded span ingest (satellite 2) ----------------------------------


def test_trace_ingest_rejects_oversized_payloads():
    manager = build_manager(None, None, 1, None)
    registry = MetricsRegistry()
    try:
        api = ServiceAPI(manager, registry=registry)
        fat_body = b'{"spans": []}' + b" " * (513 * 1024)
        assert api.handle("POST", "/v1/trace", body=fat_body).status == 413
        many = json.dumps({"spans": [{} for _ in range(2049)]}).encode()
        assert api.handle("POST", "/v1/trace", body=many).status == 413
        rejected = parse_prometheus(render_prometheus(registry))[
            ("repro_trace_ingest_rejected_total", ())
        ]
        assert rejected == 2.0
        ok = json.dumps(
            {"spans": [{"span_id": "a", "trace_id": "t"}]}
        ).encode()
        assert api.handle("POST", "/v1/trace", body=ok).status == 200
    finally:
        manager.shutdown()


# -- TSDB ---------------------------------------------------------------


def test_tsdb_rollup_tiers_and_aggregates():
    tsdb = TSDB(raw_capacity=100, tiers=((10.0, 8),))
    for i in range(25):
        tsdb.record("ep", "g", (), float(i), 100.0 + i)
    raw = tsdb.query("g")
    assert len(raw[0]["points"]) == 25
    rolled = tsdb.query("g", tier=10.0, agg="max")
    buckets = rolled[0]["points"]
    assert [b[0] for b in buckets] == [100.0, 110.0, 120.0]
    assert [b[1] for b in buckets] == [9.0, 19.0, 24.0]
    assert tsdb.query("g", tier=10.0, agg="count")[0]["points"][0][1] == 10.0
    avg = tsdb.query("g", tier=10.0, agg="avg")[0]["points"][0][1]
    assert avg == pytest.approx(4.5)


def test_tsdb_rate_survives_counter_reset():
    tsdb = TSDB()
    values = [0.0, 10.0, 20.0, 3.0, 6.0]  # restart between 20 and 3
    for i, value in enumerate(values):
        tsdb.record("ep", "c_total", (), value, 100.0 + i)
    rate = tsdb.rate("ep", "c_total", (), window=60.0, now=104.0)
    # increase = 10 + 10 + 3 (post-reset) + 3 = 26 over 4 seconds
    assert rate == pytest.approx(26.0 / 4.0)


def test_tsdb_series_budget_is_hard():
    tsdb = TSDB(max_series=2)
    tsdb.record("ep", "a", (), 1.0, 1.0)
    tsdb.record("ep", "b", (), 1.0, 1.0)
    tsdb.record("ep", "c", (), 1.0, 1.0)  # over budget: dropped
    assert tsdb.series_count() == 2
    assert tsdb.dropped_series == 1
    tsdb.record("ep", "a", (), 2.0, 2.0)  # existing series still record
    assert len(tsdb.raw_points("ep", "a")) == 2


def test_tsdb_query_filters_by_endpoint_and_labels():
    tsdb = TSDB()
    tsdb.record("a", "m", (("k", "x"),), 1.0, 1.0)
    tsdb.record("b", "m", (("k", "y"),), 2.0, 1.0)
    assert len(tsdb.query("m")) == 2
    only_a = tsdb.query("m", endpoint="a")
    assert len(only_a) == 1 and only_a[0]["labels"] == {"k": "x"}
    only_y = tsdb.query("m", labels={"k": "y"})
    assert len(only_y) == 1 and only_y[0]["endpoint"] == "b"


def test_histogram_quantile_from_bucket_deltas():
    tsdb = TSDB()
    bounds = [("0.1", 0.0), ("1", 0.0), ("+Inf", 0.0)]
    for le, value in bounds:
        tsdb.record("ep", "m_bucket", (("le", le),), value, 100.0)
    for le, value in [("0.1", 10.0), ("1", 20.0), ("+Inf", 20.0)]:
        tsdb.record("ep", "m_bucket", (("le", le),), value, 101.0)
    p50 = histogram_quantile(tsdb, "ep", "m", 0.5, 60.0, 101.0)
    assert p50 == pytest.approx(0.1)
    p99 = histogram_quantile(tsdb, "ep", "m", 0.99, 60.0, 101.0)
    assert 0.9 < p99 <= 1.0
    assert histogram_quantile(tsdb, "other", "m", 0.5, 60.0, 101.0) is None


# -- rule engine with synthetic contexts --------------------------------


def _ctx(tsdb, now, samples, **kwargs):
    defaults = dict(
        tsdb=tsdb,
        now=now,
        interval=1.0,
        healthy=sorted(samples),
        samples=samples,
        previous=kwargs.pop("previous", {}),
        statuses=kwargs.pop("statuses", {}),
        workers=kwargs.pop("workers", {}),
        restarted=kwargs.pop("restarted", {}),
    )
    defaults.update(kwargs)
    return RuleContext(**defaults)


def _leader_samples(leaders):
    return {
        endpoint: {(LEADER_GAUGE, ()): 1.0 if is_leader else 0.0}
        for endpoint, is_leader in leaders.items()
    }


def test_one_leader_lifecycle_pending_firing_resolved():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    tsdb = TSDB()
    healthy = _leader_samples({"a": True, "b": False, "c": False})
    manager.evaluate(_ctx(tsdb, 0.0, healthy))
    assert manager.alerts["raft.one_leader"].state == "ok"
    headless = _leader_samples({"a": False, "b": False, "c": False})
    manager.evaluate(_ctx(tsdb, 1.0, headless))
    assert manager.alerts["raft.one_leader"].state == "pending"
    manager.evaluate(_ctx(tsdb, 4.0, headless))  # past the 2 s dwell
    assert manager.alerts["raft.one_leader"].state == "firing"
    manager.evaluate(_ctx(tsdb, 5.0, _leader_samples({"a": False, "b": True, "c": False})))
    assert manager.alerts["raft.one_leader"].state == "resolved"
    states = [
        e["state"]
        for e in manager.log_snapshot()
        if e["rule"] == "raft.one_leader"
    ]
    assert states == ["pending", "firing", "resolved"]


def test_one_leader_pending_clears_without_firing():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    tsdb = TSDB()
    manager.evaluate(_ctx(tsdb, 0.0, _leader_samples({"a": False, "b": False})))
    assert manager.alerts["raft.one_leader"].state == "pending"
    # Violation clears before the dwell: back to ok, never fired.
    manager.evaluate(_ctx(tsdb, 1.0, _leader_samples({"a": True, "b": False})))
    assert manager.alerts["raft.one_leader"].state == "ok"
    states = [
        e["state"]
        for e in manager.log_snapshot()
        if e["rule"] == "raft.one_leader"
    ]
    assert "firing" not in states


def test_two_leaders_is_a_violation():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    split = _leader_samples({"a": True, "b": True, "c": False})
    manager.evaluate(_ctx(TSDB(), 0.0, split))
    alert = manager.alerts["raft.one_leader"]
    assert alert.state == "pending" and "2 leaders" in alert.message


def test_commit_monotonic_gated_on_restart():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    before = {"a": {("repro_raft_commit_index", ()): 10.0}}
    after = {"a": {("repro_raft_commit_index", ()): 4.0}}
    # A real restart: the regression is suppressed for that tick.
    manager.evaluate(
        _ctx(TSDB(), 0.0, after, previous=before, restarted={"a": True})
    )
    assert manager.alerts["raft.commit_monotonic"].state == "ok"
    # No restart: a regression is a protocol violation, fires instantly.
    manager.evaluate(_ctx(TSDB(), 1.0, after, previous=before))
    assert manager.alerts["raft.commit_monotonic"].state == "firing"


def test_term_monotonic_and_convergent():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    t5 = {("repro_raft_term", ()): 5.0}
    t4 = {("repro_raft_term", ()): 4.0}
    manager.evaluate(_ctx(TSDB(), 0.0, {"a": t4, "b": t5}, previous={"a": {("repro_raft_term", ()): 5.0}}))
    assert manager.alerts["raft.term_monotonic"].state == "firing"
    assert manager.alerts["raft.term_convergent"].state == "pending"


def test_quarantined_workers_never_vote_again():
    set_log_quiet(True)
    manager = AlertManager(default_rules(interval=1.0))
    worker = {"worker_id": "w1", "name": "w1", "quarantined": True, "votes_cast": 5}
    manager.evaluate(_ctx(TSDB(), 0.0, {}, workers={"a": [worker]}))
    assert manager.alerts["cluster.quarantine_votes"].state == "ok"
    voted = dict(worker, votes_cast=6)
    manager.evaluate(_ctx(TSDB(), 1.0, {}, workers={"a": [voted]}))
    assert manager.alerts["cluster.quarantine_votes"].state == "firing"


def test_broken_rule_does_not_kill_the_evaluator():
    set_log_quiet(True)
    rules = default_rules(interval=1.0)
    rules[0].check = lambda ctx: 1 / 0
    manager = AlertManager(rules)
    manager.evaluate(_ctx(TSDB(), 0.0, {}))  # must not raise
    assert manager.alerts[rules[0].name].state == "ok"


def test_slo_p99_fires_on_slow_buckets():
    set_log_quiet(True)
    rules = [r for r in default_rules(interval=1.0) if r.name == "slo.http_p99"]
    rules[0].for_seconds = 0.0
    manager = AlertManager(rules)
    tsdb = TSDB()
    name = "repro_http_request_seconds_bucket"
    for le, v0, v1 in [("0.1", 0.0, 1.0), ("1", 0.0, 1.0), ("+Inf", 0.0, 100.0)]:
        tsdb.record("ep", name, (("le", le),), v0, 100.0)
        tsdb.record("ep", name, (("le", le),), v1, 101.0)
    # 99% of observations landed above the 1 s bucket: p99 >> 500 ms.
    manager.evaluate(_ctx(tsdb, 101.0, {"ep": {}}, healthy=["ep"]))
    assert manager.alerts["slo.http_p99"].state == "firing"


# -- watchdog against a live fleet (acceptance) -------------------------


class WatchFabric(Fabric):
    """A chaos fabric where each replica's server exposes its own registry."""

    def __init__(self, tmp_path, n=3, **kwargs):
        self.registries = [MetricsRegistry() for _ in range(n)]
        super().__init__(tmp_path, n=n, **kwargs)

    def _boot(self, i, **kwargs):
        url = self.urls[i]
        peers = [u for u in self.urls if u != url]
        registry = self.registries[i]
        replica = Replica(
            str(self.tmp_path / f"r{i}"),
            url,
            peers,
            store=self.store,
            registry=registry,
            **kwargs,
        ).start()
        server, _thread = start_async_server(
            host="127.0.0.1",
            port=self.ports[i],
            store=self.store,
            coordinator=replica,
            registry=registry,
        )
        self.servers.append(server)
        return replica


def _fast_rules():
    """The default catalog with a zero-dwell one-leader rule (CI mode)."""
    rules = default_rules(interval=0.1)
    for rule in rules:
        if rule.name == "raft.one_leader":
            rule.for_seconds = 0.0
    return rules


def test_watchdog_leader_kill_fires_and_resolves(tmp_path):
    set_log_quiet(True)
    fabric = WatchFabric(tmp_path, n=3, fsync=False)
    watchdog = Watchdog(
        fabric.urls,
        interval=0.1,
        rules=_fast_rules(),
        forensics_dir=str(tmp_path / "forensics"),
    )
    try:
        leader = fabric.wait_leader()
        time.sleep(0.3)  # let the winner's term reach every follower
        # Healthy fleet: several ticks, zero invariant transitions.
        for _ in range(5):
            watchdog.tick()
        invariant_noise = [
            e
            for e in watchdog.alerts.log_snapshot()
            if e["kind"] == "invariant"
        ]
        assert invariant_noise == []
        assert watchdog.fresh() == fabric.urls
        baseline_bundles = len(watchdog.bundles())

        fabric.kill(leader)
        wait_until(
            lambda: bool(
                watchdog.tick() is not None
                and any(
                    e["rule"] == "raft.one_leader" and e["state"] == "firing"
                    for e in watchdog.alerts.log_snapshot()
                )
            ),
            timeout=20,
            poll=0.05,
        )
        assert len(watchdog.bundles()) > baseline_bundles

        fabric.wait_leader()
        wait_until(
            lambda: bool(
                watchdog.tick() is not None
                and any(
                    e["rule"] == "raft.one_leader" and e["state"] == "resolved"
                    for e in watchdog.alerts.log_snapshot()
                )
            ),
            timeout=20,
            poll=0.05,
        )
        lifecycle = [
            e["state"]
            for e in watchdog.alerts.log_snapshot()
            if e["rule"] == "raft.one_leader"
        ]
        assert lifecycle[:3] == ["pending", "firing", "resolved"]

        # The forensic bundle holds election events and term history.
        with open(watchdog.bundles()[-1], "r", encoding="utf-8") as handle:
            bundle = json.load(handle)
        assert bundle["alert"]["rule"] == "raft.one_leader"
        event_names = {e.get("event") for e in bundle["events"]}
        assert "raft.role_change" in event_names
        term_history = [
            s for s in bundle["tsdb"] if s["metric"] == "repro_raft_term"
        ]
        assert term_history and all(s["points"] for s in term_history)

        # The dashboard renders the change: dead endpoint down, a
        # leader row present, sparklines drawn.  (Extra ticks push the
        # dead endpoint past the failure detector's suspect_after.)
        for _ in range(watchdog.suspect_after):
            watchdog.tick()
        page = render_dash(watchdog)
        assert "✕&nbsp;down" in page
        assert "<td>leader</td>" in page
        assert "<polyline" in page

        # Embedded surface: attach to a survivor and hit /v1/watch/*.
        survivor = fabric.alive()[0]
        survivor.attach_watchdog(watchdog)
        index = fabric.replicas.index(survivor)
        base = fabric.urls[index]
        with urllib.request.urlopen(f"{base}/v1/watch/status", timeout=5) as r:
            status = json.loads(r.read())
        assert status["ticks"] == watchdog.ticks
        assert any(a["rule"] == "raft.one_leader" for a in status["alerts"])
        query_url = (
            f"{base}/v1/watch/query?metric=repro_raft_term&tier=0&agg=last"
        )
        with urllib.request.urlopen(query_url, timeout=5) as r:
            query = json.loads(r.read())
        assert len(query["series"]) >= 2
        with urllib.request.urlopen(f"{base}/v1/watch/dash", timeout=5) as r:
            assert b"<polyline" in r.read()

        # Forensics CLI pretty-prints the bundle.
        assert obs_main(["forensics", watchdog.bundles()[-1]]) == 0
    finally:
        watchdog.stop()
        fabric.teardown()


def test_watchdog_failure_detector_marks_down_and_up(tmp_path):
    set_log_quiet(True)
    watchdog = Watchdog(
        ["http://127.0.0.1:9"], interval=0.05, suspect_after=2, timeout=0.2
    )
    watchdog.tick()
    assert watchdog.fresh() == []
    assert watchdog.healthy() == ["http://127.0.0.1:9"]  # one failure only
    watchdog.tick()
    assert watchdog.healthy() == []  # suspect_after=2 reached
    health = watchdog.endpoint_health()["http://127.0.0.1:9"]
    assert health["down"] and health["consecutive_failures"] == 2


def test_watchdog_scrape_loop_and_standalone_server(tmp_path):
    set_log_quiet(True)
    store = ResultStore(str(tmp_path / "store"))
    server, _thread = start_async_server(
        store=store, registry=MetricsRegistry()
    )
    host, port = server.server_address
    url = f"http://{host}:{port}"
    watch_server = None
    watchdog = Watchdog([url], interval=0.05)
    try:
        watchdog.start()
        wait_until(lambda: watchdog.ticks >= 3, timeout=10)
        watchdog.stop()
        assert watchdog.tsdb.series_count() > 0
        latest = watchdog.tsdb.latest("repro_http_requests_total")
        assert latest  # the scrape loop's own requests are visible

        watch_server = serve_watch_http(watchdog, port=0)
        wport = watch_server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{wport}/v1/watch/status", timeout=5
        ) as r:
            assert json.loads(r.read())["ticks"] >= 3
        with urllib.request.urlopen(
            f"http://127.0.0.1:{wport}/v1/watch/dash", timeout=5
        ) as r:
            assert b"repro fleet watchdog" in r.read()
        bad = urllib.request.Request(
            f"http://127.0.0.1:{wport}/v1/watch/query"
        )
        try:
            urllib.request.urlopen(bad, timeout=5)
            raise AssertionError("expected 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
    finally:
        watchdog.stop()
        if watch_server is not None:
            watch_server.shutdown()
        server.shutdown()


def test_watch_cli_healthy_run_is_invariant_clean(tmp_path):
    set_log_quiet(True)
    store = ResultStore(str(tmp_path / "store"))
    server, _thread = start_async_server(
        store=store, registry=MetricsRegistry()
    )
    host, port = server.server_address
    status_path = tmp_path / "status.json"
    try:
        code = obs_main(
            [
                "watch",
                "--endpoints",
                f"http://{host}:{port}",
                "--interval",
                "0.05",
                "--duration",
                "0.5",
                "--invariant-dwell",
                "0",
                "--fail-on-alert",
                "invariant",
                "--status-out",
                str(status_path),
            ]
        )
        assert code == 0
        status = json.loads(status_path.read_text())
        assert status["ticks"] >= 2
        assert all(a["state"] == "ok" for a in status["alerts"])
    finally:
        server.shutdown()


def test_query_from_params_validation():
    watchdog = Watchdog([], interval=1.0)
    with pytest.raises(ValueError):
        watchdog.query_from_params({})
    watchdog.tsdb.record("ep", "m", (("k", "x"),), 1.0, 1.0)
    out = watchdog.query_from_params(
        {"metric": "m", "endpoint": "ep", "label.k": "x"}
    )
    assert out["series"][0]["points"] == [[1.0, 1.0]]
    assert watchdog.query_from_params({"metric": "m", "label.k": "y"})[
        "series"
    ] == []
