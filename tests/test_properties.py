"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.robust import is_k_resilient, is_robust, is_t_immune
from repro.crypto.field import Polynomial, PrimeField
from repro.crypto.shamir import (
    Share,
    reconstruct_secret,
    reconstruct_with_errors,
    share_secret,
)
from repro.games.normal_form import NormalFormGame, profile_as_mixed
from repro.games.repeated import discounted_total
from repro.solvers.lemke_howson import lemke_howson
from repro.solvers.replicator import multi_population_replicator
from repro.solvers.zerosum import zero_sum_equilibrium

FIELD = PrimeField(2_147_483_647)
SMALL_FIELD = PrimeField(101)

def _matrix(m, n):
    return st.lists(
        st.lists(
            st.integers(min_value=-10, max_value=10),
            min_size=n, max_size=n,
        ),
        min_size=m, max_size=m,
    )


# A pair of same-shape payoff matrices (row player's and column player's).
payoff_matrices = st.integers(min_value=2, max_value=4).flatmap(
    lambda m: st.integers(min_value=2, max_value=4).flatmap(
        lambda n: st.tuples(_matrix(m, n), _matrix(m, n))
    )
)


class TestFieldProperties:
    @given(st.integers(), st.integers())
    def test_add_commutes(self, a, b):
        assert FIELD.add(a, b) == FIELD.add(b, a)

    @given(st.integers(), st.integers(), st.integers())
    def test_mul_distributes(self, a, b, c):
        left = FIELD.mul(a, FIELD.add(b, c))
        right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
        assert left == right

    @given(st.integers(min_value=1, max_value=2_147_483_646))
    def test_inverse_roundtrip(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=6),
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=6),
    )
    def test_polynomial_mul_degree(self, a_coeffs, b_coeffs):
        a = Polynomial(SMALL_FIELD, a_coeffs)
        b = Polynomial(SMALL_FIELD, b_coeffs)
        product = a * b
        if a.degree >= 0 and b.degree >= 0:
            assert product.degree == a.degree + b.degree
        else:
            assert product.degree == -1

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=100),
    )
    def test_polynomial_evaluation_matches_naive(self, coeffs, x):
        p = Polynomial(SMALL_FIELD, coeffs)
        naive = sum(c * x**k for k, c in enumerate(coeffs)) % 101
        assert p(x) == naive


class TestShamirProperties:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=2, max_value=9),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_t_plus_1_shares_reconstruct(self, secret, n, data):
        t = data.draw(st.integers(min_value=1, max_value=n - 1))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        shares = share_secret(FIELD, secret, n=n, t=t, rng=rng)
        subset = data.draw(
            st.permutations(shares).map(lambda p: list(p)[: t + 1])
        )
        assert reconstruct_secret(FIELD, subset) == secret

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_robust_reconstruction_beats_corruption(self, secret, data):
        n, t, e = 7, 2, 2  # n >= t + 2e + 1
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        shares = share_secret(FIELD, secret, n=n, t=t, rng=rng)
        corrupt_idx = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0, max_size=e, unique=True,
            )
        )
        tampered = list(shares)
        for i in corrupt_idx:
            tampered[i] = Share(
                tampered[i].x, (tampered[i].y + 1 + i) % FIELD.p
            )
        assert (
            reconstruct_with_errors(FIELD, tampered, t=t, max_errors=e)
            == secret
        )


class TestSolverProperties:
    @given(payoff_matrices)
    @settings(max_examples=30, deadline=None)
    def test_lemke_howson_returns_nash(self, matrix):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        try:
            profile = lemke_howson(game)
        except RuntimeError:
            return  # degenerate game: allowed to bail, never to lie
        assert game.is_nash(profile, tol=1e-4)

    @given(payoff_matrices)
    @settings(max_examples=30, deadline=None)
    def test_zero_sum_lp_value_consistent(self, matrix):
        a = np.array(matrix[0], dtype=float)
        game = NormalFormGame.from_bimatrix(a)
        profile, value = zero_sum_equilibrium(game)
        assert game.is_nash(profile, tol=1e-6)
        assert game.expected_payoff(0, profile) == pytest.approx(
            value, abs=1e-6
        )
        # Minimax duality: value is between pure-strategy security levels.
        assert a.min() - 1e-9 <= value <= a.max() + 1e-9

    @given(payoff_matrices)
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_replicator_stays_on_simplex(self, matrix):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        result = multi_population_replicator(game, iterations=200, step=0.2)
        for vec in result.final:
            assert abs(vec.sum() - 1.0) < 1e-6
            assert np.all(vec >= -1e-12)


class TestRobustnessProperties:
    @given(payoff_matrices, st.data())
    @settings(max_examples=25, deadline=None)
    def test_nash_iff_one_zero_robust(self, matrix, data):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        row = data.draw(st.integers(0, game.num_actions[0] - 1))
        col = data.draw(st.integers(0, game.num_actions[1] - 1))
        profile = profile_as_mixed((row, col), game.num_actions)
        assert game.is_nash(profile, tol=1e-9) == is_robust(
            game, profile, 1, 0
        )

    @given(payoff_matrices, st.data())
    @settings(max_examples=15, deadline=None)
    def test_resilience_monotone_in_k(self, matrix, data):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        row = data.draw(st.integers(0, game.num_actions[0] - 1))
        col = data.draw(st.integers(0, game.num_actions[1] - 1))
        profile = profile_as_mixed((row, col), game.num_actions)
        # If 2-resilient then 1-resilient (monotone property).
        if is_k_resilient(game, profile, 2):
            assert is_k_resilient(game, profile, 1)

    @given(payoff_matrices, st.data())
    @settings(max_examples=15, deadline=None)
    def test_immunity_monotone_in_t(self, matrix, data):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        row = data.draw(st.integers(0, game.num_actions[0] - 1))
        col = data.draw(st.integers(0, game.num_actions[1] - 1))
        profile = profile_as_mixed((row, col), game.num_actions)
        if is_t_immune(game, profile, 1):
            # t=1 is the max meaningful t for 2 players; trivially holds.
            assert is_t_immune(game, profile, 1)


class TestGameProperties:
    @given(payoff_matrices)
    @settings(max_examples=30, deadline=None)
    def test_expected_payoff_within_pure_bounds(self, matrix):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        profile = game.uniform_profile()
        for player in range(2):
            value = game.expected_payoff(player, profile)
            assert game.payoffs[player].min() - 1e-9 <= value
            assert value <= game.payoffs[player].max() + 1e-9

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1, max_size=20,
        ),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_discounted_total_bounds(self, rewards, delta):
        total = discounted_total(rewards, delta)
        bound = sum(abs(r) for r in rewards)
        assert abs(total) <= bound + 1e-9

    @given(payoff_matrices)
    @settings(max_examples=20, deadline=None)
    def test_payoff_shift_preserves_equilibria(self, matrix):
        a = np.array(matrix[0], dtype=float)
        b = np.array(matrix[1], dtype=float)
        game = NormalFormGame.from_bimatrix(a, b)
        shifted = game.with_payoff_transform(lambda t: t + 7.5)
        assert game.pure_nash_equilibria() == shifted.pure_nash_equilibria()
