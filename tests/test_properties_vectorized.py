"""Vectorized hot paths agree with their ``_reference_*`` loop oracles.

The PR that vectorized ``repro.core.robust`` and the ``NormalFormGame``
enumeration paths kept the original per-profile loops as private
reference implementations; these hypothesis properties pin the two
implementations together on random small games.  Integer payoffs and
degenerate (pure) profiles keep the comparisons exact — any disagreement
is a logic bug, not floating-point noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.robust import (
    _reference_immunity_violations,
    _reference_resilience_violations,
    immunity_violations,
    is_k_resilient,
    is_t_immune,
    max_immunity,
    max_resilience,
    resilience_violations,
)
from repro.games.normal_form import (
    NormalFormGame,
    is_distribution,
    normalize_distribution,
    profile_as_mixed,
)
from repro.solvers import fictitious_play, fictitious_play_batch


@st.composite
def small_games(draw, max_players=3, max_actions=3):
    """A random n-player game with small integer payoffs."""
    n = draw(st.integers(2, max_players))
    actions = [draw(st.integers(2, max_actions)) for _ in range(n)]
    size = int(np.prod([n] + actions))
    values = draw(
        st.lists(st.integers(-5, 5), min_size=size, max_size=size)
    )
    tensor = np.array(values, dtype=float).reshape((n, *actions))
    return NormalFormGame(tensor)


@st.composite
def games_with_pure_profile(draw):
    """A random small game plus one of its pure profiles, embedded as mixed."""
    game = draw(small_games())
    profile = tuple(
        draw(st.integers(0, m - 1)) for m in game.num_actions
    )
    return game, profile_as_mixed(profile, game.num_actions)


@settings(max_examples=60, deadline=None)
@given(small_games())
def test_pure_nash_matches_reference(game):
    assert game.pure_nash_equilibria() == game._reference_pure_nash_equilibria()


@settings(max_examples=60, deadline=None)
@given(small_games(), st.booleans())
def test_dominated_actions_match_reference(game, strict):
    for player in range(game.n_players):
        assert game.dominated_actions(
            player, strict=strict
        ) == game._reference_dominated_actions(player, strict=strict)


@settings(max_examples=40, deadline=None)
@given(games_with_pure_profile(), st.integers(1, 3))
def test_resilience_violations_match_reference(game_profile, k):
    game, profile = game_profile
    vec = resilience_violations(game, profile, k, first_only=False)
    ref = _reference_resilience_violations(game, profile, k, first_only=False)
    assert vec == ref  # pure profiles: payoffs are exact integer sums


@settings(max_examples=40, deadline=None)
@given(games_with_pure_profile(), st.integers(1, 3))
def test_immunity_violations_match_reference(game_profile, t):
    game, profile = game_profile
    vec = immunity_violations(game, profile, t, first_only=False)
    ref = _reference_immunity_violations(game, profile, t, first_only=False)
    assert vec == ref


@settings(max_examples=30, deadline=None)
@given(games_with_pure_profile())
def test_weak_variant_and_max_orders_consistent(game_profile):
    game, profile = game_profile
    n = game.n_players
    max_k = max_resilience(game, profile)
    max_t = max_immunity(game, profile)
    # max_* answers agree with the is_* predicates at and past the boundary.
    assert (max_k == n) or not is_k_resilient(game, profile, max_k + 1)
    if max_k >= 1:
        assert is_k_resilient(game, profile, max_k)
    assert (max_t == n - 1) or not is_t_immune(game, profile, max_t + 1)
    if max_t >= 1:
        assert is_t_immune(game, profile, max_t)
    # The weak notion is implied by the strong one being violated-free:
    # a weak violation (every member gains) is in particular a strong one.
    for k in range(1, n + 1):
        if is_k_resilient(game, profile, k, variant="strong"):
            assert is_k_resilient(game, profile, k, variant="weak")


@settings(max_examples=25, deadline=None)
@given(small_games(max_players=2, max_actions=4), st.integers(50, 200))
def test_fictitious_play_batch_rows_match_single_runs(game, iterations):
    starts = np.zeros((3, 2), dtype=int)
    starts[1] = [m - 1 for m in game.num_actions]
    batch = fictitious_play_batch(
        game, 3, iterations=iterations, initial_actions=starts
    )
    for row, start in zip(batch, starts):
        single = fictitious_play(
            game, iterations=iterations, initial_actions=list(start)
        )
        assert row.last_actions == single.last_actions
        for a, b in zip(row.empirical, single.empirical):
            assert np.allclose(a, b, atol=1e-12)


class TestDistributionHelpers:
    """The documented edge-case contract of the two distribution helpers."""

    def test_all_zero_raises_by_default(self):
        with pytest.raises(ValueError):
            normalize_distribution([0.0, 0.0, 0.0])

    def test_all_negative_raises_by_default(self):
        # Negatives clip to zero first, so this is the same zero-mass case.
        with pytest.raises(ValueError):
            normalize_distribution([-1.0, -2.0])

    def test_all_zero_uniform_mode(self):
        out = normalize_distribution([0.0, 0.0, 0.0, 0.0], on_zero="uniform")
        assert np.allclose(out, 0.25)

    def test_on_zero_validated(self):
        with pytest.raises(ValueError):
            normalize_distribution([1.0], on_zero="nonsense")

    def test_tolerance_consistency_with_is_distribution(self):
        # Mass at exactly the tolerance boundary counts as zero for both.
        tol = 1e-6
        tiny = [tol / 4, tol / 4]
        with pytest.raises(ValueError):
            normalize_distribution(tiny, tol=tol)
        uniform = normalize_distribution(tiny, tol=tol, on_zero="uniform")
        assert is_distribution(uniform, tol=tol)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e-12, max_value=10.0), min_size=1, max_size=6
        )
    )
    def test_normalize_output_is_distribution(self, values):
        arr = np.asarray(values)
        if float(np.clip(arr, 0.0, None).sum()) <= 1e-9:
            out = normalize_distribution(values, on_zero="uniform")
        else:
            out = normalize_distribution(values)
        assert is_distribution(out)
