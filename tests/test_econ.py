"""Tests for the scrip system (E11) and P2P free riding (E12)."""

import numpy as np
import pytest

from repro.econ.p2p import SharingPopulation, sharing_game_small
from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripSystem,
    ThresholdAgent,
    best_response_threshold,
    find_symmetric_threshold_equilibrium,
)
from repro.solvers.dominance import iterated_strict_dominance


class TestScripSystem:
    def test_threshold_economy_circulates(self):
        agents = [ThresholdAgent(3) for _ in range(10)]
        system = ScripSystem(agents, benefit=1.0, cost=0.2)
        result = system.run(5000, seed=0)
        assert result.requests_made > 0
        assert result.satisfaction_rate > 0.9
        # Scrip is conserved (no altruists).
        assert result.final_scrip.sum() == 10 * system.initial_scrip

    def test_simulation_deterministic_per_seed(self):
        agents = [ThresholdAgent(3) for _ in range(6)]
        a = ScripSystem(agents).run(2000, seed=5)
        b = ScripSystem(agents).run(2000, seed=5)
        np.testing.assert_array_equal(a.final_scrip, b.final_scrip)
        np.testing.assert_allclose(a.utilities, b.utilities)

    def test_all_threshold_one_freezes(self):
        # Everyone starts above threshold 1, so nobody ever volunteers.
        agents = [ThresholdAgent(1) for _ in range(5)]
        result = ScripSystem(agents, initial_scrip=2).run(1000, seed=0)
        assert result.requests_satisfied == 0

    def test_hoarders_drain_money_supply(self):
        base = [ThresholdAgent(4) for _ in range(10)]
        with_hoarders = [ThresholdAgent(4) for _ in range(7)] + [
            Hoarder() for _ in range(3)
        ]
        rounds = 30_000
        healthy = ScripSystem(base, initial_scrip=2).run(rounds, seed=1)
        drained = ScripSystem(with_hoarders, initial_scrip=2).run(
            rounds, seed=1
        )
        threshold_ids = range(7)
        assert drained.mean_utility(threshold_ids) < healthy.mean_utility(
            range(10)
        )
        # The hoarders end up holding a large share of all scrip.
        hoarder_share = drained.final_scrip[7:].sum() / drained.final_scrip.sum()
        assert hoarder_share > 0.4

    def test_altruists_help_requesters(self):
        base = [ThresholdAgent(4) for _ in range(10)]
        with_altruists = [ThresholdAgent(4) for _ in range(8)] + [
            Altruist() for _ in range(2)
        ]
        rounds = 20_000
        plain = ScripSystem(base).run(rounds, seed=2)
        helped = ScripSystem(with_altruists).run(rounds, seed=2)
        assert helped.served_for_free > 0
        # Requesters keep their scrip when served for free, so the
        # satisfaction rate cannot be worse.
        assert helped.satisfaction_rate >= plain.satisfaction_rate - 0.02

    def test_validation(self):
        agents = [ThresholdAgent(2), ThresholdAgent(2)]
        with pytest.raises(ValueError):
            ScripSystem(agents, benefit=0.1, cost=0.2)
        with pytest.raises(ValueError):
            ScripSystem(agents, discount=0.0)
        with pytest.raises(ValueError):
            ScripSystem([ThresholdAgent(2)])

    def test_discounting_reduces_late_utility(self):
        agents = [ThresholdAgent(4) for _ in range(6)]
        undiscounted = ScripSystem(agents, discount=1.0).run(3000, seed=3)
        discounted = ScripSystem(agents, discount=0.999).run(3000, seed=3)
        assert discounted.utilities.sum() < undiscounted.utilities.sum()


class TestThresholdEquilibrium:
    def test_best_response_computes_all_candidates(self):
        best, utilities = best_response_threshold(
            3, [1, 3, 5], n_agents=8, rounds=4000, seed=0
        )
        assert set(utilities) == {1, 3, 5}
        assert best in utilities

    def test_some_threshold_is_equilibrium_with_discounting(self):
        candidates = [2, 4, 8, 16]
        equilibria = find_symmetric_threshold_equilibrium(
            candidates,
            n_agents=12,
            rounds=12_000,
            cost=0.6,
            discount=0.999,
            seed=4,
            tolerance=3.0,
        )
        assert equilibria  # a threshold equilibrium exists

    def test_degenerate_threshold_one_is_equilibrium(self):
        # If nobody works, working alone just burns cost: all-1 is an
        # (empirical) equilibrium.
        equilibria = find_symmetric_threshold_equilibrium(
            [1, 4], n_agents=6, rounds=4000, seed=0, tolerance=0.0
        )
        assert 1 in equilibria


class TestP2PGame:
    def test_free_riding_dominates(self):
        game = sharing_game_small(4)
        for player in range(4):
            assert game.dominated_actions(player) == [1]  # sharing dominated

    def test_unique_equilibrium_nobody_shares(self):
        game = sharing_game_small(3)
        result = iterated_strict_dominance(game)
        assert result.kept == [[0], [0], [0]]
        assert game.pure_nash_equilibria() == [(0, 0, 0)]

    def test_population_reproduces_adar_huberman(self):
        outcome = SharingPopulation(n_users=20_000, seed=0).equilibrium()
        assert abs(outcome.fraction_free_riders - 0.70) < 0.03
        assert abs(outcome.top1pct_response_share - 0.50) < 0.12

    def test_population_statistics_stable_across_seeds(self):
        fractions = [
            SharingPopulation(n_users=10_000, seed=s)
            .equilibrium()
            .fraction_free_riders
            for s in range(4)
        ]
        assert max(fractions) - min(fractions) < 0.03

    def test_responses_sum_to_one(self):
        outcome = SharingPopulation(n_users=2_000, seed=1).equilibrium()
        assert outcome.responses.sum() == pytest.approx(1.0)
        # Non-sharers answer nothing.
        assert outcome.responses[~outcome.sharers].sum() == 0.0

    def test_equilibrium_is_strict(self):
        assert SharingPopulation(n_users=1_000, seed=2).is_equilibrium_strict()

    def test_cost_quantile_controls_free_riding(self):
        lax = SharingPopulation(
            n_users=10_000, cost_quantile=0.3, seed=0
        ).equilibrium()
        harsh = SharingPopulation(
            n_users=10_000, cost_quantile=0.9, seed=0
        ).equilibrium()
        assert lax.fraction_free_riders < harsh.fraction_free_riders

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SharingPopulation(cost_quantile=1.5)
        with pytest.raises(ValueError):
            SharingPopulation(pareto_alpha=0.0)
        with pytest.raises(ValueError):
            sharing_game_small(1)

    def test_summary_renders(self):
        outcome = SharingPopulation(n_users=1_000, seed=0).equilibrium()
        assert "share nothing" in outcome.summary()
