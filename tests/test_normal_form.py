"""Unit tests for repro.games.normal_form."""

import numpy as np
import pytest

from repro.games.classics import (
    battle_of_the_sexes,
    chicken,
    matching_pennies,
    prisoners_dilemma,
    roshambo,
    stag_hunt,
)
from repro.games.normal_form import (
    NormalFormGame,
    is_distribution,
    normalize_distribution,
    profile_as_mixed,
    pure_profiles,
)


class TestConstruction:
    def test_from_bimatrix_shapes(self):
        game = NormalFormGame.from_bimatrix([[1, 2], [3, 4]], [[4, 3], [2, 1]])
        assert game.n_players == 2
        assert game.num_actions == (2, 2)

    def test_zero_sum_default(self):
        game = NormalFormGame.from_bimatrix([[1, -1], [-1, 1]])
        assert game.is_zero_sum()

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            NormalFormGame.from_bimatrix([[1, 2]], [[1], [2]])

    def test_rejects_bad_tensor_rank(self):
        with pytest.raises(ValueError):
            NormalFormGame(np.zeros((3, 2, 2)))  # 3 players need 4 dims

    def test_action_labels_validated(self):
        with pytest.raises(ValueError):
            NormalFormGame(
                np.zeros((2, 2, 2)), action_labels=[["a"], ["x", "y"]]
            )

    def test_from_payoff_function(self):
        game = NormalFormGame.from_payoff_function(
            2, [2, 2], lambda p: [sum(p), -sum(p)]
        )
        assert game.payoff(0, (1, 1)) == 2.0
        assert game.payoff(1, (1, 1)) == -2.0

    def test_symmetric_constructor(self):
        game = NormalFormGame.symmetric_two_player([[1, 0], [2, 3]])
        assert game.is_symmetric()

    def test_player_names_default(self):
        game = prisoners_dilemma()
        assert game.players == ["P0", "P1"]

    def test_action_index_lookup(self):
        game = prisoners_dilemma()
        assert game.action_index(0, "D") == 1
        with pytest.raises(KeyError):
            game.action_index(0, "nope")


class TestPayoffEvaluation:
    def test_pure_payoffs_match_matrix(self):
        game = prisoners_dilemma()
        assert game.payoff(0, (0, 0)) == 3.0
        assert game.payoff(0, (0, 1)) == -5.0
        assert game.payoff(1, (0, 1)) == 5.0
        assert game.payoff(0, (1, 1)) == -3.0

    def test_payoff_vector(self):
        game = prisoners_dilemma()
        np.testing.assert_allclose(game.payoff_vector((1, 0)), [5.0, -5.0])

    def test_expected_payoff_uniform(self):
        game = matching_pennies()
        profile = game.uniform_profile()
        assert game.expected_payoff(0, profile) == pytest.approx(0.0)
        assert game.expected_payoff(1, profile) == pytest.approx(0.0)

    def test_expected_payoff_degenerate_matches_pure(self):
        game = prisoners_dilemma()
        profile = profile_as_mixed((1, 0), game.num_actions)
        assert game.expected_payoff(0, profile) == pytest.approx(5.0)

    def test_payoff_against_vector(self):
        game = prisoners_dilemma()
        profile = game.uniform_profile()
        values = game.payoff_against(0, profile)
        # C vs uniform: (3 - 5)/2 = -1; D vs uniform: (5 - 3)/2 = 1
        np.testing.assert_allclose(values, [-1.0, 1.0])

    def test_expected_payoff_three_players(self):
        game = NormalFormGame.from_payoff_function(
            3, [2, 2, 2], lambda p: [p[0] + p[1] + p[2]] * 3
        )
        profile = [np.array([0.5, 0.5])] * 3
        assert game.expected_payoff(0, profile) == pytest.approx(1.5)


class TestEquilibriumPredicates:
    def test_pd_unique_pure_nash(self):
        game = prisoners_dilemma()
        assert game.pure_nash_equilibria() == [(1, 1)]

    def test_stag_hunt_two_pure_nash(self):
        assert set(stag_hunt().pure_nash_equilibria()) == {(0, 0), (1, 1)}

    def test_roshambo_no_pure_nash(self):
        assert roshambo().pure_nash_equilibria() == []

    def test_roshambo_uniform_is_nash(self):
        game = roshambo()
        assert game.is_nash(game.uniform_profile())

    def test_matching_pennies_pure_not_nash(self):
        game = matching_pennies()
        assert not game.is_pure_nash((0, 0))

    def test_regret_positive_off_equilibrium(self):
        game = prisoners_dilemma()
        profile = profile_as_mixed((0, 0), game.num_actions)
        assert game.regret(0, profile) == pytest.approx(2.0)  # 5 - 3

    def test_max_regret_zero_at_equilibrium(self):
        game = prisoners_dilemma()
        profile = profile_as_mixed((1, 1), game.num_actions)
        assert game.max_regret(profile) == pytest.approx(0.0)

    def test_best_responses_ties(self):
        game = NormalFormGame.from_bimatrix([[1, 1], [1, 1]], [[0, 0], [0, 0]])
        profile = game.uniform_profile()
        assert game.best_responses(0, profile) == [0, 1]

    def test_validate_profile_rejects_bad_lengths(self):
        game = prisoners_dilemma()
        with pytest.raises(ValueError):
            game.validate_profile([np.array([1.0, 0.0])])

    def test_validate_profile_rejects_non_distribution(self):
        game = prisoners_dilemma()
        with pytest.raises(ValueError):
            game.validate_profile(
                [np.array([0.5, 0.2]), np.array([1.0, 0.0])]
            )


class TestDominance:
    def test_defect_dominates_cooperate(self):
        game = prisoners_dilemma()
        assert game.dominates(0, 1, 0, strict=True)
        assert not game.dominates(0, 0, 1, strict=True)

    def test_dominated_actions(self):
        game = prisoners_dilemma()
        assert game.dominated_actions(0) == [0]
        assert game.dominated_actions(1) == [0]

    def test_weak_dominance(self):
        game = NormalFormGame.from_bimatrix(
            [[1, 1], [1, 0]], [[0, 0], [0, 0]]
        )
        assert game.dominates(0, 0, 1, strict=False)
        assert not game.dominates(0, 0, 1, strict=True)


class TestTransformations:
    def test_restrict_keeps_payoffs(self):
        game = roshambo()
        sub = game.restrict([[0, 1], [0, 1]])
        assert sub.num_actions == (2, 2)
        assert sub.payoff(0, (1, 0)) == game.payoff(0, (1, 0))

    def test_restrict_rejects_empty(self):
        with pytest.raises(ValueError):
            roshambo().restrict([[], [0]])

    def test_with_payoff_transform(self):
        game = prisoners_dilemma()
        shifted = game.with_payoff_transform(lambda t: t + 10)
        assert shifted.payoff(0, (0, 0)) == 13.0
        # Equilibria invariant under positive affine shifts.
        assert shifted.pure_nash_equilibria() == [(1, 1)]

    def test_transform_must_keep_shape(self):
        game = prisoners_dilemma()
        with pytest.raises(ValueError):
            game.with_payoff_transform(lambda t: t[0])


class TestWelfareAndPareto:
    def test_social_welfare(self):
        game = prisoners_dilemma()
        profile = profile_as_mixed((0, 0), game.num_actions)
        assert game.social_welfare(profile) == pytest.approx(6.0)

    def test_cc_pareto_dominates_dd(self):
        game = prisoners_dilemma()
        cc = profile_as_mixed((0, 0), game.num_actions)
        dd = profile_as_mixed((1, 1), game.num_actions)
        assert game.pareto_dominates(cc, dd)
        assert not game.pareto_dominates(dd, cc)

    def test_pareto_optimal_pure(self):
        game = prisoners_dilemma()
        assert game.is_pareto_optimal_pure((0, 0))
        assert not game.is_pareto_optimal_pure((1, 1))


class TestHelpers:
    def test_pure_profiles_count(self):
        assert len(list(pure_profiles([2, 3]))) == 6

    def test_is_distribution(self):
        assert is_distribution(np.array([0.5, 0.5]))
        assert not is_distribution(np.array([0.5, 0.6]))
        assert not is_distribution(np.array([-0.1, 1.1]))
        assert not is_distribution(np.array([[0.5, 0.5]]))

    def test_normalize_distribution(self):
        out = normalize_distribution([2.0, 2.0])
        np.testing.assert_allclose(out, [0.5, 0.5])
        with pytest.raises(ValueError):
            normalize_distribution([-1.0, -2.0])

    def test_battle_of_sexes_equilibria(self):
        game = battle_of_the_sexes()
        assert set(game.pure_nash_equilibria()) == {(0, 0), (1, 1)}

    def test_chicken_equilibria(self):
        game = chicken()
        assert set(game.pure_nash_equilibria()) == {(0, 1), (1, 0)}
