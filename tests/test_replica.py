"""Chaos suite for the replicated control plane (ISSUE 8 acceptance).

Three live replicas — real :class:`~repro.cluster.replica.Replica`
consensus threads under real asyncio HTTP servers, talked to by real
workers through :class:`~repro.service.client.ServiceClient` failover —
get killed, partitioned, and restarted while sweeps are in flight:

* the leader is hard-killed (SIGKILL analog) mid-sweep with votes
  already counted: a new leader takes over and the sweep's payload is
  byte-identical to the serial run;
* a follower is partitioned away: the majority keeps committing, and on
  heal the follower converges to the same state digest;
* a replica is crash-restarted from its durable directory (fsync'd log
  + snapshot) and catches back up to the fabric's digest;
* writes sent to a follower bounce with 421 + a leader hint the client
  chases transparently.

Determinism invariant, asserted after every fault: two replicas
reporting the same ``applied_index`` MUST report the same
``state_digest`` — replication is exact or it is broken.
"""

import socket
import threading
import time

import pytest

from repro.cluster.replica import NotLeaderError, Replica
from repro.cluster.worker import run_worker_thread
from repro.experiments.runner import run_experiments
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

E1 = "coordination_robustness"

# Fast failure-detector settings for tests: elections settle in well
# under a second, heartbeats keep the channel warm.
FAST = {"heartbeat_interval": 0.04, "election_timeout": (0.15, 0.3)}


def _free_port() -> int:
    """An OS-assigned free TCP port (racy but fine for a test)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Fabric:
    """N replicas + HTTP servers + workers, with chaos helpers."""

    def __init__(self, tmp_path, n=3, fsync=False, **replica_kwargs):
        self.tmp_path = tmp_path
        self.store = ResultStore(str(tmp_path / "store"))
        self.ports = [_free_port() for _ in range(n)]
        self.urls = [f"http://127.0.0.1:{p}" for p in self.ports]
        self.replicas = []
        self.servers = []
        self.stop = threading.Event()
        self.worker_threads = []
        kwargs = dict(FAST)
        kwargs.update(replica_kwargs)
        for i in range(n):
            self.replicas.append(
                self._boot(i, fsync=fsync, **kwargs)
            )

    def _boot(self, i, **kwargs):
        """Start (or restart) replica ``i`` and its HTTP server."""
        url = self.urls[i]
        peers = [u for u in self.urls if u != url]
        replica = Replica(
            str(self.tmp_path / f"r{i}"),
            url,
            peers,
            store=self.store,
            **kwargs,
        ).start()
        server, _thread = start_async_server(
            host="127.0.0.1",
            port=self.ports[i],
            store=self.store,
            coordinator=replica,
        )
        self.servers.append(server)
        return replica

    def alive(self):
        """Replicas not (hard-)stopped."""
        return [r for r in self.replicas if not r._stop.is_set()]

    def wait_leader(self, timeout=15.0):
        """Block until exactly one live replica leads; return it."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            leaders = [
                r for r in self.alive() if r.raft_status()["role"] == "leader"
            ]
            if len(leaders) == 1:
                return leaders[0]
            time.sleep(0.02)
        raise AssertionError("no single leader emerged within timeout")

    def kill(self, replica):
        """SIGKILL analog: stop threads with no cleanup, stop its HTTP."""
        index = self.replicas.index(replica)
        replica.hard_stop()
        self.servers[index].shutdown()

    def client(self, urls=None, **kwargs):
        """A failover client over all (or the given) endpoints."""
        return ServiceClient(urls or self.urls, **kwargs)

    def spawn_workers(self, n=2):
        """n honest thread-workers with failover transports."""
        workers = []
        for i in range(n):
            worker, thread = run_worker_thread(
                self.client(), name=f"w{i}", stop=self.stop, poll=0.02
            )
            workers.append(worker)
            self.worker_threads.append(thread)
        return workers

    def assert_digests_consistent(self):
        """Same applied_index ⇒ same state digest, across live replicas."""
        by_index = {}
        for replica in self.alive():
            status = replica.raft_status()
            digest = by_index.setdefault(
                status["applied_index"], status["state_digest"]
            )
            assert digest == status["state_digest"], (
                f"replicas diverge at applied_index "
                f"{status['applied_index']}"
            )

    def teardown(self):
        self.stop.set()
        for thread in self.worker_threads:
            thread.join(timeout=10)
        for server in self.servers:
            server.shutdown()
            server.server_close()
        for replica in self.replicas:
            replica.close()


@pytest.fixture
def fabric(tmp_path):
    """Factory for a live replica fabric; tears everything down after."""
    fabrics = []

    def build(n=3, **kwargs):
        built = Fabric(tmp_path, n=n, **kwargs)
        fabrics.append(built)
        return built

    yield build
    for built in fabrics:
        built.teardown()


def wait_until(predicate, timeout=15.0, poll=0.02):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached within timeout")


def test_leader_kill_mid_sweep_preserves_byte_identical_results(fabric):
    """The acceptance run: SIGKILL the leader while a redundancy-3 sweep
    is in flight; the survivors elect, finish, and match the serial run.
    """
    fab = fabric(n=3)
    leader = fab.wait_leader()
    fab.spawn_workers(2)
    client = fab.client(timeout=30.0)
    client.submit_sweep(scenarios=[E1], executor="cluster", redundancy=3)
    # Let real quorum voting start before the kill, so committed work
    # demonstrably survives the crash.
    wait_until(lambda: leader.stats()["votes_received"] >= 2, timeout=60)
    fab.kill(leader)
    survivor = fab.wait_leader()
    assert survivor is not leader
    # The killed server's job manager died with it; resubmission
    # content-hash-attaches to the units the old quorum accepted.
    job, results = client.run_sweep(
        scenarios=[E1], executor="cluster", redundancy=3, timeout=120
    )
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    fab.assert_digests_consistent()
    # Let the first submission's orphaned units drain (workers keep
    # leasing them from the new leader), then check the books: every
    # unit completed at least once, at worst once per submission (the
    # resubmission re-shards only the cases still cold at submit time,
    # so its overlap with the orphaned units is bounded).
    wait_until(lambda: survivor.stats()["open_units"] == 0, timeout=60)
    completed = survivor.stats()["units_completed"]
    assert len(serial) <= completed <= 2 * len(serial)
    # Everything the fabric accepted is durably in the shared store: a
    # further submission is pure cache hits, no fabric work at all.
    job3, results3 = client.run_sweep(
        scenarios=[E1], executor="cluster", redundancy=3, timeout=120
    )
    assert job3["cache_misses"] == 0
    assert results3.payload_bytes() == serial.payload_bytes()
    assert survivor.stats()["units_completed"] == completed


def test_partitioned_follower_heals_to_the_same_digest(fabric):
    """A partitioned follower misses a sweep, then converges on heal."""
    fab = fabric(n=3)
    leader = fab.wait_leader()
    follower = next(r for r in fab.alive() if r is not leader)
    # Cut every link touching the follower (both directions: its sends
    # and everyone's sends to it).
    follower.drop_traffic = lambda peer: True
    for replica in fab.alive():
        if replica is not follower:
            replica.drop_traffic = (
                lambda peer, target=follower.self_url: peer == target
            )
    fab.spawn_workers(2)
    majority_urls = [u for u in fab.urls if u != follower.self_url]
    client = fab.client(urls=majority_urls, timeout=30.0)
    job, results = client.run_sweep(
        scenarios=[E1], executor="cluster", redundancy=3, timeout=120
    )
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    behind = follower.raft_status()["applied_index"]
    ahead = leader.raft_status()["applied_index"]
    assert behind < ahead  # the partition really isolated it
    # Heal: the follower (which has been campaigning into the void at
    # ever-higher terms) rejoins; its stale log cannot win an election,
    # and the leader's appends catch it up.
    for replica in fab.alive():
        replica.drop_traffic = None
    healed = fab.wait_leader(timeout=30)
    wait_until(
        lambda: follower.raft_status()["applied_index"]
        >= healed.raft_status()["commit_index"]
        > 0,
        timeout=30,
    )
    fab.assert_digests_consistent()


def test_replica_restarts_from_disk_and_catches_up(fabric, tmp_path):
    """Crash a follower, restart from its fsync'd directory, reconverge.

    Uses a tiny ``snapshot_interval`` so the restart also exercises the
    snapshot + trailing-log load path, and real ``fsync=True`` so the
    bytes on disk are the bytes a power loss would leave.
    """
    fab = fabric(n=3, fsync=True, snapshot_interval=8)
    leader = fab.wait_leader()
    follower = next(r for r in fab.alive() if r is not leader)
    index = fab.replicas.index(follower)
    fab.spawn_workers(2)
    client = fab.client(timeout=30.0)
    client.run_sweep(scenarios=[E1], executor="cluster", timeout=120)
    fab.kill(follower)
    # More committed traffic while the follower is down.
    client2 = fab.client(
        urls=[u for u in fab.urls if u != follower.self_url], timeout=30.0
    )
    client2.run_sweep(
        scenarios=[E1], executor="cluster", base_seed=1, timeout=120
    )
    # Restart from the same durable directory on the same port.
    fab.replicas[index] = fab._boot(
        index, fsync=True, snapshot_interval=8, **FAST
    )
    restarted = fab.replicas[index]
    assert restarted.raft_status()["applied_index"] > 0  # loaded state
    current = fab.wait_leader(timeout=30)
    wait_until(
        lambda: restarted.raft_status()["applied_index"]
        >= current.raft_status()["commit_index"]
        > 0,
        timeout=30,
    )
    fab.assert_digests_consistent()


def test_follower_redirects_writes_and_client_chases_the_hint(fabric):
    """A write to a follower 421s with a hint the client follows."""
    fab = fabric(n=3)
    leader = fab.wait_leader()
    follower = next(r for r in fab.alive() if r is not leader)
    # The follower learns who leads from the first heartbeat; wait for
    # that so the 421 carries a hint rather than a mid-election None.
    wait_until(
        lambda: follower.raft_status()["leader"] == leader.self_url
    )
    with pytest.raises(NotLeaderError) as excinfo:
        follower.register_worker(name="direct")
    assert excinfo.value.leader_url == leader.self_url
    # A client configured with ONLY the follower's URL still lands the
    # write: the 421 hint teaches it the leader endpoint.
    client = fab.client(urls=[follower.self_url], timeout=30.0)
    reply = client.register_worker(name="via-hint")
    assert reply["worker_id"]
    assert leader.self_url in client.endpoints
    assert client.base_url == leader.self_url


def test_single_replica_fabric_is_a_working_degenerate_case(fabric):
    """n=1 elects itself and behaves like a plain coordinator."""
    fab = fabric(n=1)
    leader = fab.wait_leader()
    fab.spawn_workers(1)
    client = fab.client(timeout=30.0)
    job, results = client.run_sweep(
        scenarios=[E1], executor="cluster", timeout=120
    )
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    assert leader.raft_status()["role"] == "leader"


def test_tick_commands_expire_leases_identically_on_all_replicas(fabric):
    """Lease expiry is log-ordered: every replica expires the same lease.

    A worker registers, leases a unit, and dies (never completes).  The
    leader's replicated ``tick`` commands expire the lease at one log
    position; afterwards every replica agrees another worker can take
    the unit, and their digests still match.
    """
    # unit_size larger than the sweep makes the whole sweep ONE unit:
    # the only way the heir can get work is the doomed lease expiring.
    fab = fabric(n=3, lease_ttl=0.3, tick_interval=0.1, unit_size=64)
    fab.wait_leader()
    client = fab.client(timeout=30.0)
    worker_id = client.register_worker(name="doomed")["worker_id"]
    submitted = client.submit_sweep(
        scenarios=[E1], executor="cluster"
    )
    lease = client.lease(worker_id)
    assert lease["unit"] is not None  # leased, never completed
    # The replicated clock ticks the lease out; the unit becomes
    # leasable again on whatever replica answers.
    second_id = client.register_worker(name="heir")["worker_id"]
    wait_until(
        lambda: client.lease(second_id).get("unit") is not None, timeout=30
    )
    fab.assert_digests_consistent()
    # Drain: let real workers finish the sweep so teardown is clean.
    fab.spawn_workers(2)
    status = client.wait_for_job(submitted["job_id"], timeout=120)
    assert status["status"] == "done"
