"""Unit tests for the crypto substrate: field, Shamir, SMPC, toys."""

import numpy as np
import pytest

from repro.crypto.field import DEFAULT_PRIME, Polynomial, PrimeField
from repro.crypto.shamir import (
    Share,
    berlekamp_welch,
    reconstruct_secret,
    reconstruct_with_errors,
    share_secret,
)
from repro.crypto.smpc import ArithmeticCircuit, SMPCEngine
from repro.crypto.toys import ToyCommitment, ToyPKI


FIELD = PrimeField(101)
BIG = PrimeField()


class TestPrimeField:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(100)

    def test_default_prime_is_mersenne(self):
        assert DEFAULT_PRIME == 2**31 - 1

    def test_inverse(self):
        for a in range(1, 20):
            assert FIELD.mul(a, FIELD.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_arithmetic_wraps(self):
        assert FIELD.add(100, 5) == 4
        assert FIELD.sub(3, 5) == 99
        assert FIELD.neg(1) == 100

    def test_lagrange_interpolation(self):
        # f(x) = 3 + 2x over GF(101)
        points = [(1, 5), (2, 7)]
        assert FIELD.lagrange_interpolate_at(points, 0) == 3
        assert FIELD.lagrange_interpolate_at(points, 5) == 13

    def test_lagrange_rejects_duplicate_x(self):
        with pytest.raises(ValueError):
            FIELD.lagrange_interpolate_at([(1, 5), (1, 7)], 0)


class TestPolynomial:
    def test_evaluation_horner(self):
        p = Polynomial(FIELD, [3, 2, 1])  # 3 + 2x + x^2
        assert p(0) == 3
        assert p(2) == 11

    def test_degree_and_trimming(self):
        assert Polynomial(FIELD, [1, 0, 0]).degree == 0
        assert Polynomial(FIELD, [0]).degree == -1

    def test_addition_subtraction(self):
        a = Polynomial(FIELD, [1, 2])
        b = Polynomial(FIELD, [3, 4, 5])
        assert (a + b).coeffs == [4, 6, 5]
        assert (b - a).coeffs == [2, 2, 5]

    def test_multiplication(self):
        a = Polynomial(FIELD, [1, 1])  # 1 + x
        b = Polynomial(FIELD, [1, 100])  # 1 - x
        assert (a * b).coeffs == [1, 0, 100]  # 1 - x^2

    def test_divmod_roundtrip(self):
        a = Polynomial(FIELD, [2, 0, 3, 1])
        b = Polynomial(FIELD, [1, 1])
        q, r = a.divmod(b)
        assert (q * b + r).coeffs == a.coeffs

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Polynomial(FIELD, [1]).divmod(Polynomial(FIELD, [0]))

    def test_interpolation_exact(self):
        p = Polynomial(FIELD, [7, 3, 9])
        points = [(x, p(x)) for x in (2, 5, 11)]
        q = Polynomial.interpolate(FIELD, points)
        assert q == p

    def test_random_polynomial_constant_term(self):
        rng = np.random.default_rng(0)
        p = Polynomial.random(FIELD, degree=3, constant_term=42, rng=rng)
        assert p(0) == 42

    def test_cross_field_operations_rejected(self):
        with pytest.raises(ValueError):
            Polynomial(FIELD, [1]) + Polynomial(BIG, [1])


class TestShamir:
    def test_share_and_reconstruct(self):
        rng = np.random.default_rng(1)
        shares = share_secret(BIG, 123456, n=5, t=2, rng=rng)
        assert len(shares) == 5
        assert reconstruct_secret(BIG, shares[:3]) == 123456
        assert reconstruct_secret(BIG, shares[2:]) == 123456

    def test_threshold_shares_insufficient_changes_answer(self):
        # t shares interpolate to *a* value but not reliably the secret:
        # verify that two different share subsets of size t can disagree.
        rng = np.random.default_rng(2)
        shares = share_secret(BIG, 99, n=6, t=3, rng=rng)
        a = reconstruct_secret(BIG, shares[:3])  # only t shares
        b = reconstruct_secret(BIG, shares[3:])
        # With overwhelming probability these don't both equal 99.
        assert not (a == 99 and b == 99)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            share_secret(BIG, 1, n=3, t=3)
        with pytest.raises(ValueError):
            share_secret(PrimeField(5), 1, n=7, t=1)
        with pytest.raises(ValueError):
            reconstruct_secret(BIG, [])

    def test_robust_reconstruction_corrects_errors(self):
        rng = np.random.default_rng(3)
        shares = share_secret(BIG, 777, n=7, t=2, rng=rng)
        tampered = list(shares)
        tampered[1] = Share(tampered[1].x, 5)
        tampered[4] = Share(tampered[4].x, 6)
        assert reconstruct_with_errors(BIG, tampered, t=2, max_errors=2) == 777

    def test_robust_reconstruction_bound(self):
        rng = np.random.default_rng(4)
        shares = share_secret(BIG, 55, n=5, t=2, rng=rng)
        # n=5, t=2 allows e=1 (5 >= 2 + 2 + 1); e=2 must raise.
        with pytest.raises(ValueError):
            reconstruct_with_errors(BIG, shares, t=2, max_errors=2)

    def test_berlekamp_welch_zero_errors_fast_path(self):
        p = Polynomial(FIELD, [9, 4])
        points = [(x, p(x)) for x in range(1, 5)]
        decoded = berlekamp_welch(FIELD, points, degree=1, max_errors=0)
        assert decoded == p

    def test_berlekamp_welch_detects_inconsistency(self):
        p = Polynomial(FIELD, [9, 4])
        points = [(x, p(x)) for x in range(1, 5)]
        points[0] = (1, p(1) + 1)
        decoded = berlekamp_welch(FIELD, points, degree=1, max_errors=0)
        assert decoded is None


class TestSMPC:
    def test_circuit_matches_plain_evaluation(self):
        c = ArithmeticCircuit(BIG)
        a, b = c.input_wire(), c.input_wire()
        c.mark_output(c.add(c.mul(a, b), c.const_mul(a, 3)))
        engine = SMPCEngine(BIG, n=5, t=2, rng=np.random.default_rng(0))
        transcript = engine.run(c, [11, 13])
        assert transcript.open_outputs() == c.evaluate_plain([11, 13])
        assert transcript.open_outputs() == [(11 * 13 + 33)]

    def test_multiplication_chains(self):
        c = ArithmeticCircuit(BIG)
        x = c.input_wire()
        cube = c.mul(c.mul(x, x), x)
        c.mark_output(cube)
        engine = SMPCEngine(BIG, n=7, t=3, rng=np.random.default_rng(1))
        assert engine.run(c, [6]).open_outputs() == [216]

    def test_subtraction_and_const_add(self):
        c = ArithmeticCircuit(BIG)
        a, b = c.input_wire(), c.input_wire()
        c.mark_output(c.const_add(c.sub(a, b), 100))
        engine = SMPCEngine(BIG, n=3, t=1, rng=np.random.default_rng(2))
        assert engine.run(c, [7, 9]).open_outputs() == [98]

    def test_honest_majority_required(self):
        with pytest.raises(ValueError):
            SMPCEngine(BIG, n=4, t=2)

    def test_robust_opening_with_corruptions(self):
        c = ArithmeticCircuit(BIG)
        a, b = c.input_wire(), c.input_wire()
        c.mark_output(c.mul(a, b))
        engine = SMPCEngine(BIG, n=7, t=1, rng=np.random.default_rng(3))
        transcript = engine.run(c, [21, 2])
        corrupted = {0: 12345}
        assert transcript.open_outputs_with_corruptions(corrupted) == [42]

    def test_party_view_has_one_share_per_wire(self):
        c = ArithmeticCircuit(BIG)
        a = c.input_wire()
        c.mark_output(c.const_mul(a, 2))
        engine = SMPCEngine(BIG, n=3, t=1, rng=np.random.default_rng(4))
        transcript = engine.run(c, [5])
        assert len(transcript.party_view(0)) == 2

    def test_input_count_checked(self):
        c = ArithmeticCircuit(BIG)
        c.input_wire()
        engine = SMPCEngine(BIG, n=3, t=1)
        with pytest.raises(ValueError):
            engine.run(c, [1, 2])

    def test_wire_validation(self):
        c = ArithmeticCircuit(BIG)
        with pytest.raises(ValueError):
            c.add(0, 1)


class TestToys:
    def test_commitment_roundtrip(self):
        commitment = ToyCommitment.commit(42, nonce=777)
        assert commitment.open(42, 777)
        assert not commitment.open(43, 777)
        assert not commitment.open(42, 778)

    def test_signature_verifies(self):
        pki = ToyPKI(3, seed=0)
        sig = pki.sign(1, "attack at dawn")
        assert sig.verify(pki, "attack at dawn")
        assert not sig.verify(pki, "retreat")

    def test_forgery_fails(self):
        pki = ToyPKI(3, seed=0)
        forged = pki.forge_attempt(2, claimed_signer=1, message="x", guess=12345)
        assert forged is None

    def test_unknown_signer(self):
        pki = ToyPKI(2, seed=0)
        with pytest.raises(KeyError):
            pki.sign(9, "hello")
        sig = pki.sign(0, "m")
        other = ToyPKI(1, seed=9)
        assert not sig.verify(other, "m") or other.public_record.get(0) == pki.public_record[0]
