"""Tests for (k,t)-robustness (E1, E2, and the (1,0)=Nash identity)."""

import numpy as np
import pytest

from repro.core.robust import (
    immunity_violations,
    is_k_resilient,
    is_robust,
    is_t_immune,
    max_immunity,
    max_resilience,
    resilience_violations,
    robustness_report,
)
from repro.games.classics import (
    bargaining_game,
    coordination_01_game,
    matching_pennies,
    prisoners_dilemma,
)
from repro.games.normal_form import NormalFormGame, profile_as_mixed


def all_zero(game):
    return profile_as_mixed((0,) * game.n_players, game.num_actions)


class TestCoordinationExample:
    """Section 2's 0/1 game: all-0 is Nash but any pair gains by deviating."""

    @pytest.fixture(scope="class")
    def game(self):
        return coordination_01_game(4)

    def test_all_zero_is_nash(self, game):
        assert game.is_nash(all_zero(game))

    def test_all_zero_is_1_resilient(self, game):
        assert is_k_resilient(game, all_zero(game), 1)

    def test_all_zero_not_2_resilient_strong(self, game):
        assert not is_k_resilient(game, all_zero(game), 2, variant="strong")

    def test_all_zero_not_2_resilient_weak(self, game):
        # Both deviators strictly gain (2 > 1), so even the weak variant fails.
        assert not is_k_resilient(game, all_zero(game), 2, variant="weak")

    def test_violation_details(self, game):
        violations = resilience_violations(game, all_zero(game), 2)
        v = violations[0]
        assert len(v.coalition) == 2
        assert v.deviation == (1, 1)
        assert all(g == pytest.approx(1.0) for g in v.gains)  # 2 - 1

    def test_max_resilience_is_one(self, game):
        assert max_resilience(game, all_zero(game)) == 1

    def test_scales_with_n(self):
        for n in (2, 3, 5):
            game = coordination_01_game(n)
            assert max_resilience(game, all_zero(game)) == 1


class TestBargainingExample:
    """Section 2's bargaining game: k-resilient for all k, not 1-immune."""

    @pytest.fixture(scope="class")
    def game(self):
        return bargaining_game(4)

    def test_all_stay_is_nash(self, game):
        assert game.is_nash(all_zero(game))

    def test_all_stay_resilient_for_every_k(self, game):
        profile = all_zero(game)
        for k in range(1, game.n_players + 1):
            assert is_k_resilient(game, profile, k), k

    def test_all_stay_not_1_immune(self, game):
        assert not is_t_immune(game, all_zero(game), 1)

    def test_immunity_violation_structure(self, game):
        violations = immunity_violations(game, all_zero(game), 1)
        v = violations[0]
        assert len(v.deviators) == 1
        assert v.deviation == (1,)  # the deviator leaves
        assert v.loss == pytest.approx(2.0)  # stayers drop from 2 to 0

    def test_max_immunity_zero(self, game):
        assert max_immunity(game, all_zero(game)) == 0

    def test_robustness_report(self, game):
        report = robustness_report(game, all_zero(game))
        assert report.is_nash
        assert report.max_k_strong == game.n_players
        assert report.max_t == 0
        assert report.first_immunity_violation is not None
        assert "immunity broken" in report.describe()


class TestNashIdentity:
    """A Nash equilibrium is exactly a (1,0)-robust equilibrium."""

    @pytest.mark.parametrize(
        "game_factory,profile",
        [
            (prisoners_dilemma, (1, 1)),
            (lambda: coordination_01_game(3), (0, 0, 0)),
            (lambda: bargaining_game(3), (0, 0, 0)),
        ],
    )
    def test_pure_nash_iff_10_robust(self, game_factory, profile):
        game = game_factory()
        mixed = profile_as_mixed(profile, game.num_actions)
        assert game.is_nash(mixed) == is_robust(game, mixed, 1, 0)

    def test_non_nash_is_not_10_robust(self):
        game = prisoners_dilemma()
        cc = profile_as_mixed((0, 0), game.num_actions)
        assert not is_robust(game, cc, 1, 0)

    def test_mixed_nash_is_10_robust(self):
        game = matching_pennies()
        uniform = game.uniform_profile()
        assert is_robust(game, uniform, 1, 0)


class TestWeakVsStrongResilience:
    def test_weak_holds_where_strong_fails(self):
        # Coalition deviation helps one member and hurts the other:
        # strong resilience is violated, weak resilience survives.
        # Payoffs: baseline (0, 0) at (a, a); deviation to (b, b) gives
        # (1, -1); unilateral deviations give -10 to the deviator.
        a = np.array(
            [
                [[0.0, -10.0], [-10.0, 1.0]],
                [[0.0, -10.0], [-10.0, -1.0]],
            ]
        )
        game = NormalFormGame(a)
        profile = profile_as_mixed((0, 0), game.num_actions)
        assert game.is_nash(profile)
        assert not is_k_resilient(game, profile, 2, variant="strong")
        assert is_k_resilient(game, profile, 2, variant="weak")

    def test_weak_correlated_violation_found_by_lp(self):
        # No pure joint deviation benefits both, but a correlated mixture
        # does: two deviations, each great for one member, fine for the
        # other on average.
        def payoff_fn(profile):
            if profile == (0, 0):
                return [0.0, 0.0]
            if profile == (1, 1):
                return [3.0, -1.0]
            if profile == (2, 2):
                return [-1.0, 3.0]
            return [-5.0, -5.0]

        game = NormalFormGame.from_payoff_function(2, [3, 3], payoff_fn)
        profile = profile_as_mixed((0, 0), game.num_actions)
        assert game.is_nash(profile)
        # Pure check alone finds no all-gain deviation...
        pure_all_gain = [
            v
            for v in resilience_violations(
                game, profile, 2, variant="strong", first_only=False
            )
            if len(v.coalition) == 2 and all(g > 0 for g in v.gains)
        ]
        assert not pure_all_gain
        # ...but the correlated LP does: mix (1,1) and (2,2) equally.
        assert not is_k_resilient(game, profile, 2, variant="weak")

    def test_variant_validation(self):
        game = prisoners_dilemma()
        with pytest.raises(ValueError):
            is_k_resilient(game, all_zero(game), 1, variant="medium")


class TestImmunityEdgeCases:
    def test_immunity_trivial_for_t0(self):
        game = bargaining_game(3)
        assert is_robust(game, all_zero(game), 1, 0)

    def test_immune_game(self):
        # A game where nobody can hurt anyone: constant payoffs.
        game = NormalFormGame(np.zeros((3, 2, 2, 2)))
        profile = all_zero(game)
        assert is_t_immune(game, profile, 2)
        assert max_immunity(game, profile) == 2

    def test_mixed_profile_immunity(self):
        game = matching_pennies()
        uniform = game.uniform_profile()
        # Zero-sum 2-player: the opponent deviating cannot lower my
        # guaranteed value at the maximin mix.
        assert is_t_immune(game, uniform, 1)
