"""The consensus model checker: green on RaftCore, red on broken cores.

Two kinds of evidence that the acceptance gate has teeth:

* the *real* :class:`~repro.cluster.replica.RaftCore` passes an
  exhaustive bounded search (and the search really visits crash and
  restart interleavings);
* deliberately broken cores — one that forgets its durable vote, one
  that skips the log up-to-dateness check — are caught, with shrunk
  counterexample traces that replay on the broken core and do NOT
  replay on the real one.
"""

import json

import pytest

from repro.cluster.replica import RaftCore
from repro.verify.consensus import (
    COMMIT_SAFETY,
    ELECTION_SAFETY,
    ConsensusAction,
    ConsensusTrace,
    _ModelState,
    check_consensus,
)


class AmnesiacVoteCore(RaftCore):
    """Broken on purpose: forgets its durable vote within a term.

    Granting to every candidate of the current term lets two candidates
    assemble quorums from overlapping voters — the exact double-vote
    Raft's persist-before-reply rule exists to prevent.
    """

    def _on_vote_req(self, m):
        if m["term"] > self.term:
            self._step_down(m["term"])
        granted = False
        if m["term"] == self.term:  # BUG: ignores self.voted_for
            self.log.set_term(self.term, m["from"])
            granted = True
        return [
            {
                "type": "vote_reply",
                "from": self.node_id,
                "to": m["from"],
                "term": self.term,
                "granted": granted,
            }
        ]


class LaxUpToDateCore(RaftCore):
    """Broken on purpose: grants votes without comparing logs.

    A candidate missing committed entries can then win an election and
    overwrite them — the leader-completeness violation the up-to-date
    check exists to prevent.
    """

    def _on_vote_req(self, m):
        if m["term"] > self.term:
            self._step_down(m["term"])
        granted = False
        if m["term"] == self.term and self.voted_for in (None, m["from"]):
            self.log.set_term(self.term, m["from"])  # BUG: no log check
            granted = True
        return [
            {
                "type": "vote_reply",
                "from": self.node_id,
                "to": m["from"],
                "term": self.term,
                "granted": granted,
            }
        ]


def test_real_core_passes_exhaustively_with_a_crash_budget():
    """3 replicas, 1 crash, 1 client append: no reachable violation."""
    result = check_consensus(replicas=3, crashes=1, appends=1, depth=6)
    assert result.ok
    assert result.counterexample is None
    assert not result.truncated
    assert result.states_explored > 1000  # crash/restart space is real
    assert result.invariants == (ELECTION_SAFETY, COMMIT_SAFETY)


def test_single_replica_elects_itself_and_stays_safe():
    """The degenerate n=1 cluster is quorum 1 and trivially safe."""
    result = check_consensus(replicas=1, crashes=1, appends=2, depth=6)
    assert result.ok


def test_amnesiac_vote_core_elects_two_leaders_in_one_term():
    """BFS finds the double-election; the trace is minimal + replayable."""
    result = check_consensus(
        replicas=3,
        crashes=0,
        appends=0,
        depth=6,
        core_factory=AmnesiacVoteCore,
    )
    assert not result.ok
    trace = result.counterexample
    assert trace.invariant == ELECTION_SAFETY
    # Two elections need two timeouts, two request deliveries, and two
    # grant deliveries — the shrunk trace carries nothing else.
    assert len(trace.actions) == 6
    assert trace.replay_violates(AmnesiacVoteCore)
    # The same schedule against the REAL core is harmless: the second
    # candidate's request hits a voter whose durable vote is spent.
    assert not trace.replay_violates(RaftCore)


def _lax_vote_schedule():
    """The schedule where the missing log check loses a committed entry.

    n0 wins term 1 with n1's vote and commits its noop on quorum
    {n0, n1}; n2 — whose log is empty — campaigns twice (term 1 is
    refused even by the lax core: n1's vote is spent; term 2 steps n1
    down and is lax-granted) and wins with a log that lacks the
    committed entry, then overwrites it.

    Recorded by driving a live model (so every delivered message is
    byte-identical to an in-flight one) rather than BFS — the violation
    sits at depth 11, past what an exhaustive search pays for in a
    unit test.
    """
    state = _ModelState(3, LaxUpToDateCore)
    actions = []

    def do(action):
        actions.append(action)
        state.apply(action)

    def deliver(frm, to):
        message = next(
            m
            for m in state.network
            if m["from"] == frm and m["to"] == to
        )
        do(ConsensusAction("deliver", message=json.loads(json.dumps(message))))

    do(ConsensusAction("timeout", node=0))
    deliver("n0", "n1")  # vote_req term 1
    deliver("n1", "n0")  # granted -> n0 leads term 1
    deliver("n0", "n1")  # append_req: replicate the noop
    deliver("n1", "n0")  # append_reply: quorum {n0, n1} commits index 1
    do(ConsensusAction("timeout", node=2))  # term 1 campaign
    deliver("n2", "n1")  # refused: n1's durable vote is spent
    do(ConsensusAction("timeout", node=2))  # term 2 campaign
    deliver("n2", "n1")  # steps n1 down; lax grant despite empty log
    deliver("n1", "n2")  # stale term-1 refusal (ignored)
    deliver("n1", "n2")  # term-2 grant -> n2 leads, commit is lost
    return tuple(actions)


def test_lax_up_to_date_core_loses_a_committed_entry():
    """The directed 11-action schedule kills the lax core, not the real one."""
    trace = ConsensusTrace(
        protocol="replica",
        replicas=3,
        crashes=0,
        appends=0,
        depth=11,
        invariant=COMMIT_SAFETY,
        detail="",
        actions=_lax_vote_schedule(),
    )
    violation, state = trace.replay(LaxUpToDateCore)
    assert violation is not None and violation[0] == COMMIT_SAFETY
    assert trace.replay_violates(LaxUpToDateCore)
    # Same schedule, real core: n1 refuses the empty-logged candidate,
    # n2 never wins, and the committed entry stays committed.
    violation, state = trace.replay(RaftCore)
    assert violation is None
    assert state.committed == {1: (1, 1)}


def test_trace_json_roundtrip_and_replay(tmp_path):
    """A found counterexample survives save -> load -> replay."""
    result = check_consensus(
        replicas=3,
        crashes=0,
        appends=0,
        depth=6,
        core_factory=AmnesiacVoteCore,
    )
    path = tmp_path / "double-leader.json"
    result.counterexample.save(str(path))
    loaded = ConsensusTrace.load(str(path))
    assert loaded == result.counterexample
    assert loaded.replay_violates(AmnesiacVoteCore)
    obj = json.loads(path.read_text())
    assert obj["protocol"] == "replica"
    assert obj["invariant"] == ELECTION_SAFETY


def test_result_json_shape():
    """The JSON verdict carries the bounds, stats, and invariant names."""
    result = check_consensus(replicas=2, crashes=0, appends=0, depth=4)
    obj = result.to_json_obj()
    assert obj["ok"] is True
    assert obj["protocol"] == "replica"
    assert obj["replicas"] == 2
    assert obj["states_explored"] == result.states_explored
    assert ELECTION_SAFETY in obj["invariants"]


def test_crash_amnesia_does_not_double_vote():
    """Crash/restart interleavings cannot force a double vote.

    The durable log keeps (term, voted_for) across the modeled crash,
    so a restarted voter still refuses the second candidate — searched
    exhaustively rather than asserted.
    """
    result = check_consensus(replicas=3, crashes=2, appends=0, depth=7)
    assert result.ok
    assert not result.truncated


def test_state_cap_reports_truncation():
    """Hitting max_states flags the verdict as a bounded search."""
    result = check_consensus(
        replicas=3, crashes=1, appends=1, depth=8, max_states=200
    )
    assert result.ok  # nothing found within the cap...
    assert result.truncated  # ...but the verdict says the cap was hit


def test_rejects_bad_configuration():
    """Zero replicas is a usage error, not a vacuous PASS."""
    with pytest.raises(ValueError):
        check_consensus(replicas=0)
