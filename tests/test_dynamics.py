"""Tests for the Axelrod tournament and evolutionary dynamics (E13)."""

import numpy as np
import pytest

from repro.dynamics.evolution import (
    empirical_payoff_matrix,
    evolutionary_tournament,
)
from repro.dynamics.tournament import (
    NoisyStrategy,
    round_robin_tournament,
)
from repro.machines.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    TitForTat,
    strategy_zoo,
)


class TestRoundRobin:
    def test_tft_near_top_of_zoo(self):
        result = round_robin_tournament(strategy_zoo(), rounds=150, delta=0.99)
        assert result.rank_of("tit_for_tat") <= 3

    def test_always_defect_beats_always_cooperate_head_to_head(self):
        result = round_robin_tournament(
            [AlwaysDefect(), AlwaysCooperate()], rounds=50
        )
        record = result.match_records[1]  # (0,0), (0,1), (1,1) ordering
        assert record.name_a == "always_defect"
        assert record.score_a > record.score_b

    def test_but_reciprocity_wins_the_tournament(self):
        entrants = [AlwaysDefect(), AlwaysCooperate(), TitForTat(), GrimTrigger()]
        result = round_robin_tournament(entrants, rounds=100, delta=0.99)
        assert result.rank_of("always_defect") > result.rank_of("tit_for_tat")

    def test_self_play_included_by_default(self):
        result = round_robin_tournament([TitForTat(), AlwaysDefect()], rounds=10)
        pairs = {(r.name_a, r.name_b) for r in result.match_records}
        assert ("tit_for_tat", "tit_for_tat") in pairs

    def test_self_play_can_be_excluded(self):
        result = round_robin_tournament(
            [TitForTat(), AlwaysDefect()], rounds=10, include_self_play=False
        )
        pairs = {(r.name_a, r.name_b) for r in result.match_records}
        assert ("tit_for_tat", "tit_for_tat") not in pairs

    def test_noise_degrades_grim_more_than_tft(self):
        entrants = [TitForTat(), GrimTrigger(), AlwaysCooperate()]
        clean = round_robin_tournament(entrants, rounds=200, repetitions=3)
        noisy = round_robin_tournament(
            entrants, rounds=200, noise=0.05, repetitions=3, seed=11
        )

        def score(result, name):
            return dict(result.ranking())[name]

        drop_grim = score(clean, "grim_trigger") - score(noisy, "grim_trigger")
        drop_tft = score(clean, "tit_for_tat") - score(noisy, "tit_for_tat")
        assert drop_grim > drop_tft

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            round_robin_tournament([TitForTat(), TitForTat()], rounds=5)

    def test_table_renders(self):
        result = round_robin_tournament([TitForTat(), AlwaysDefect()], rounds=10)
        table = result.table()
        assert "tit_for_tat" in table and "rank" in table

    def test_unknown_entrant_rank(self):
        result = round_robin_tournament([TitForTat(), AlwaysDefect()], rounds=5)
        with pytest.raises(KeyError):
            result.rank_of("zeus")


class TestNoisyStrategy:
    def test_zero_noise_is_transparent(self):
        wrapped = NoisyStrategy(TitForTat(), 0.0)
        assert wrapped.act([]) == 0
        assert wrapped.act([1]) == 1

    def test_full_noise_inverts(self):
        wrapped = NoisyStrategy(AlwaysCooperate(), 1.0)
        assert wrapped.act([]) == 1

    def test_noise_validated(self):
        with pytest.raises(ValueError):
            NoisyStrategy(TitForTat(), 1.5)

    def test_reset_reproducible(self):
        wrapped = NoisyStrategy(AlwaysCooperate(), 0.5, seed=4)
        first = [wrapped.act([]) for _ in range(10)]
        wrapped.reset()
        assert [wrapped.act([]) for _ in range(10)] == first


class TestEvolution:
    def test_payoff_matrix_shape(self):
        entrants = [TitForTat(), AlwaysDefect()]
        matrix = empirical_payoff_matrix(entrants, rounds=50)
        assert matrix.shape == (2, 2)
        # TFT vs TFT: 3 per round; AllD vs AllD: -3 per round.
        assert matrix[0, 0] == pytest.approx(3.0)
        assert matrix[1, 1] == pytest.approx(-3.0)

    def test_defectors_wash_out_of_cooperative_ecosystem(self):
        entrants = [TitForTat(), GrimTrigger(), AlwaysDefect()]
        result = evolutionary_tournament(entrants, rounds=100, iterations=3000)
        shares = dict(zip(result.names, result.final))
        assert shares["always_defect"] < 0.05

    def test_population_remains_simplex(self):
        entrants = [TitForTat(), AlwaysDefect(), AlwaysCooperate()]
        result = evolutionary_tournament(entrants, rounds=50, iterations=500)
        assert result.final.sum() == pytest.approx(1.0)
        assert np.all(result.final >= 0)

    def test_dominant_listing(self):
        entrants = [TitForTat(), AlwaysDefect()]
        result = evolutionary_tournament(entrants, rounds=100, iterations=3000)
        names = [name for name, _share in result.dominant()]
        assert "tit_for_tat" in names
