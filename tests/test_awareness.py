"""Tests for games with awareness and generalized Nash equilibrium (E9, E10)."""

import pytest

from repro.core.awareness import (
    GameWithAwareness,
    canonical_representation,
    find_generalized_nash,
)
from repro.core.awareness_examples import (
    figure1_unaware_game,
    figure_gamma_games,
    gamma_b_game,
    virtual_move_game,
)
from repro.games.classics import figure1_game
from repro.games.extensive import ExtensiveFormGame


def a_and_b_moves(gne, a_key, a_infoset, b_key, b_infoset):
    a = max(gne[a_key][a_infoset], key=gne[a_key][a_infoset].get)
    b = max(gne[b_key][b_infoset], key=gne[b_key][b_infoset].get)
    return a, b


class TestConstruction:
    def test_canonical_representation_builds(self):
        gw = canonical_representation(figure1_game())
        assert gw.modeler_game == "G"
        assert gw.strategy_pairs() == [(0, "G"), (1, "G")]

    def test_missing_f_entry_rejected(self):
        game = figure1_game()
        with pytest.raises(ValueError):
            GameWithAwareness(
                games={"g": game},
                modeler_game="g",
                f_map={("g", ()): ("g", "A")},  # B's node missing
            )

    def test_wrong_player_infoset_rejected(self):
        game = figure1_game()
        with pytest.raises(ValueError):
            GameWithAwareness(
                games={"g": game},
                modeler_game="g",
                f_map={
                    ("g", ()): ("g", "B"),  # A's node mapped to B's infoset
                    ("g", ("across_A",)): ("g", "B"),
                },
            )

    def test_unavailable_believed_moves_rejected(self):
        # Believed game offers a move the actual node lacks.
        restricted = ExtensiveFormGame(2, name="restricted")
        restricted.add_decision((), player=0, moves=("down_A",), infoset="A0")
        restricted.add_terminal(("down_A",), (1.0, 1.0))
        restricted.finalize()
        bigger = ExtensiveFormGame(2, name="bigger")
        bigger.add_decision((), player=0, moves=("x", "y"), infoset="AX")
        bigger.add_terminal(("x",), (0.0, 0.0))
        bigger.add_terminal(("y",), (0.0, 0.0))
        bigger.finalize()
        with pytest.raises(ValueError):
            GameWithAwareness(
                games={"r": restricted, "b": bigger},
                modeler_game="r",
                f_map={("r", ()): ("b", "AX"), ("b", ()): ("b", "AX")},
            )

    def test_unknown_believed_game_rejected(self):
        game = figure1_game()
        with pytest.raises(ValueError):
            GameWithAwareness(
                games={"g": game},
                modeler_game="g",
                f_map={
                    ("g", ()): ("missing", "A"),
                    ("g", ("across_A",)): ("g", "B"),
                },
            )

    def test_modeler_game_must_exist(self):
        with pytest.raises(ValueError):
            GameWithAwareness(games={}, modeler_game="g", f_map={})


class TestCanonicalEquivalence:
    """Nash of Γ iff generalized Nash of the canonical representation."""

    def test_nash_profiles_are_gne(self):
        game = figure1_game()
        gw = canonical_representation(game)
        # (across_A, down_B) is a Nash equilibrium of the tree game.
        profile = {
            (0, "G"): {"A": {"across_A": 1.0, "down_A": 0.0}},
            (1, "G"): {"B": {"across_B": 0.0, "down_B": 1.0}},
        }
        behavioral = [profile[(0, "G")], profile[(1, "G")]]
        assert game.is_nash(behavioral)
        assert gw.is_generalized_nash(profile)

    def test_non_nash_profiles_are_not_gne(self):
        game = figure1_game()
        gw = canonical_representation(game)
        profile = {
            (0, "G"): {"A": {"across_A": 1.0, "down_A": 0.0}},
            (1, "G"): {"B": {"across_B": 1.0, "down_B": 0.0}},
        }
        behavioral = [profile[(0, "G")], profile[(1, "G")]]
        assert not game.is_nash(behavioral)
        assert not gw.is_generalized_nash(profile)

    def test_full_equivalence_over_pure_profiles(self):
        game = figure1_game()
        gw = canonical_representation(game)
        for a_move in ("across_A", "down_A"):
            for b_move in ("across_B", "down_B"):
                profile = {
                    (0, "G"): {
                        "A": {m: 1.0 if m == a_move else 0.0
                              for m in ("across_A", "down_A")}
                    },
                    (1, "G"): {
                        "B": {m: 1.0 if m == b_move else 0.0
                              for m in ("across_B", "down_B")}
                    },
                }
                behavioral = [profile[(0, "G")], profile[(1, "G")]]
                assert game.is_nash(behavioral) == gw.is_generalized_nash(
                    profile
                )


class TestUnawareA:
    """The Figure 1 prose: unaware A plays down_A (E9)."""

    def test_every_gne_has_a_playing_down(self):
        gw = figure1_unaware_game()
        gnes = list(gw.all_pure_generalized_nash())
        assert gnes
        for gne in gnes:
            assert gne[(0, "gamma_b")]["A.3"]["down_A"] == 1.0

    def test_nash_of_underlying_differs(self):
        # The underlying game's subgame-perfect equilibrium has A across.
        game = figure1_game()
        profile, _values = game.backward_induction()
        assert profile[0]["A"]["across_A"] == 1.0

    def test_solver_finds_gne(self):
        gw = figure1_unaware_game()
        gne = find_generalized_nash(gw)
        assert gne is not None
        assert gw.is_generalized_nash(gne)


class TestGammaStructure:
    """Figures 2-3: the GNE depends on A's belief p that B is unaware (E10)."""

    @staticmethod
    def a_moves_across(gne):
        return gne[(0, "gamma_a")]["A.1"]["across_A"] > 0.5

    @staticmethod
    def aware_b_plays_down(gne):
        return gne[(1, "modeler")]["B"]["down_B"] > 0.5

    def test_low_p_supports_across(self):
        gw = figure_gamma_games(0.25)
        found = [
            gne
            for gne in gw.all_pure_generalized_nash()
            if self.a_moves_across(gne)
        ]
        assert found
        assert all(self.aware_b_plays_down(gne) for gne in found)

    def test_high_p_kills_across(self):
        gw = figure_gamma_games(0.75)
        found = [
            gne
            for gne in gw.all_pure_generalized_nash()
            if self.a_moves_across(gne)
        ]
        assert not found

    def test_unaware_b_forced_across(self):
        gw = figure_gamma_games(0.3)
        for gne in gw.all_pure_generalized_nash():
            assert gne[(1, "gamma_b")]["B.3"]["across_B"] == 1.0

    def test_degenerate_probabilities(self):
        with pytest.raises(ValueError):
            figure_gamma_games(1.5)

    def test_gamma_b_structure(self):
        game = gamma_b_game()
        assert game.n_players == 2
        info = game.infoset_of(("across_A",))
        assert info.moves == ("across_B",)


class TestVirtualMoves:
    """Awareness of unawareness: virtual moves (Section 4's extension)."""

    def test_pessimistic_beliefs_stay_down(self):
        gw = virtual_move_game(believed_virtual_payoffs=(0.5, 1.5))
        gnes = list(gw.all_pure_generalized_nash())
        assert gnes
        # A believes the unknown move gives her 0.5 < 1: plays down_A.
        for gne in gnes:
            if gne[(1, "subjective")]["B.v"]["virtual"] == 1.0:
                assert gne[(0, "subjective")]["A.v"]["down_A"] == 1.0

    def test_optimistic_beliefs_go_across(self):
        gw = virtual_move_game(believed_virtual_payoffs=(1.5, 1.5))
        found = [
            gne
            for gne in gw.all_pure_generalized_nash()
            if gne[(0, "subjective")]["A.v"]["across_A"] == 1.0
        ]
        assert found


class TestLocalRegret:
    def test_regret_zero_at_equilibrium(self):
        gw = figure1_unaware_game()
        gne = find_generalized_nash(gw)
        for player, game_label in gw.strategy_pairs():
            assert gw.local_regret(player, game_label, gne) <= 1e-9

    def test_missing_strategy_detected(self):
        gw = figure1_unaware_game()
        with pytest.raises(ValueError):
            gw.validate_profile({})
