"""Tests for rational secret sharing (Halpern–Teague) and BAR robustness."""

import numpy as np
import pytest

from repro.core.bar import (
    bar_violations,
    is_bar_robust,
    max_byzantine_tolerance,
    switching_cost_rescues,
)
from repro.games.classics import (
    bargaining_game,
    coordination_01_game,
    matching_pennies,
    prisoners_dilemma,
)
from repro.games.normal_form import profile_as_mixed
from repro.mediators.rational_secret_sharing import (
    RSSUtilities,
    RandomizedRSSProtocol,
    honest_equilibrium_alpha_bound,
    naive_protocol_is_equilibrium,
    naive_protocol_outcome,
)


class TestRSSUtilities:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            RSSUtilities(u_all=2.0, u_alone=1.0, u_none=0.0)

    def test_outcome_utility(self):
        u = RSSUtilities()
        assert u.outcome_utility(True, 0) == u.u_alone
        assert u.outcome_utility(True, 2) == u.u_all
        assert u.outcome_utility(False, 5) == u.u_none


class TestNaiveProtocol:
    def test_all_broadcast_everyone_learns(self):
        outcome = naive_protocol_outcome(3, 2, [True, True, True])
        assert outcome.learned == (True, True, True)

    def test_withholder_learns_alone_in_tight_case(self):
        # n = t + 1 = 3: the withheld share is essential for the others.
        outcome = naive_protocol_outcome(3, 2, [False, True, True])
        assert outcome.learned == (True, False, False)

    def test_not_equilibrium_in_tight_case(self):
        assert not naive_protocol_is_equilibrium(3, 2)
        assert not naive_protocol_is_equilibrium(4, 3)

    def test_equilibrium_with_redundant_shares(self):
        # n > t + 1: withholding does not deprive anyone.
        assert naive_protocol_is_equilibrium(5, 2)

    def test_policy_arity_checked(self):
        with pytest.raises(ValueError):
            naive_protocol_outcome(3, 2, [True, True])


class TestRandomizedProtocol:
    def test_alpha_bound_formula(self):
        u = RSSUtilities(u_all=1.0, u_alone=2.0, u_none=0.0)
        assert honest_equilibrium_alpha_bound(u) == pytest.approx(0.5)
        greedy = RSSUtilities(u_all=1.0, u_alone=5.0, u_none=0.0)
        assert honest_equilibrium_alpha_bound(greedy) == pytest.approx(0.2)

    @pytest.mark.parametrize("alpha,expected", [(0.3, True), (0.49, True),
                                                (0.51, False), (0.9, False)])
    def test_equilibrium_matches_bound(self, alpha, expected):
        protocol = RandomizedRSSProtocol(n=3, t=2, alpha=alpha)
        assert protocol.honest_is_equilibrium() == expected

    def test_honest_run_reveals_to_all(self):
        protocol = RandomizedRSSProtocol(n=3, t=2, alpha=0.4)
        outcome = protocol.run(seed=0)
        assert outcome.learned == (True, True, True)
        assert not outcome.aborted

    def test_cheater_gamble(self):
        protocol = RandomizedRSSProtocol(n=3, t=2, alpha=0.4)
        results = [protocol.run(cheater=0, seed=s) for s in range(40)]
        alone = sum(1 for r in results if r.learned == (True, False, False))
        nothing = sum(1 for r in results if r.learned == (False,) * 3)
        assert alone + nothing == len(results)  # always caught
        # Roughly alpha of the cheats pay off.
        assert 0.2 < alone / len(results) < 0.65

    def test_redundant_case_cheating_pointless(self):
        protocol = RandomizedRSSProtocol(n=5, t=2, alpha=0.9)
        # With n - 1 >= t + 1 the others learn anyway; cheating gains
        # nothing, so honesty is an equilibrium even at high alpha.
        assert protocol.honest_is_equilibrium()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomizedRSSProtocol(n=3, t=2, alpha=0.0)
        with pytest.raises(ValueError):
            RandomizedRSSProtocol(n=3, t=3, alpha=0.5)

    def test_expected_rounds_scale_with_alpha(self):
        fast = RandomizedRSSProtocol(n=3, t=2, alpha=0.5)
        slow = RandomizedRSSProtocol(n=3, t=2, alpha=0.05)
        fast_rounds = np.mean([fast.run(seed=s).rounds for s in range(30)])
        slow_rounds = np.mean([slow.run(seed=s).rounds for s in range(30)])
        assert slow_rounds > fast_rounds


class TestBARRobustness:
    def test_b0_no_altruists_is_nash(self):
        game = prisoners_dilemma()
        dd = profile_as_mixed((1, 1), game.num_actions)
        cc = profile_as_mixed((0, 0), game.num_actions)
        assert is_bar_robust(game, dd, 0) == game.is_nash(dd)
        assert is_bar_robust(game, cc, 0) == game.is_nash(cc)

    def test_bargaining_not_bar_robust(self):
        # One Byzantine leaver makes leaving the rational best response.
        game = bargaining_game(4)
        stay = profile_as_mixed((0,) * 4, game.num_actions)
        assert is_bar_robust(game, stay, 0)
        assert not is_bar_robust(game, stay, 1)
        violation = bar_violations(game, stay, 1)[0]
        assert violation.deviation == 1  # the rational player leaves too
        assert violation.gain == pytest.approx(1.0)

    def test_max_byzantine_tolerance(self):
        game = bargaining_game(4)
        stay = profile_as_mixed((0,) * 4, game.num_actions)
        assert max_byzantine_tolerance(game, stay) == 0
        # Non-Nash profiles report -1.
        pd = prisoners_dilemma()
        cc = profile_as_mixed((0, 0), pd.num_actions)
        assert max_byzantine_tolerance(pd, cc) == -1

    def test_matching_pennies_mixed_bar(self):
        game = matching_pennies()
        uniform = game.uniform_profile()
        # 2 players: one Byzantine leaves one rational player, whose
        # maximin mix stays a best response to *any* opponent action?  No:
        # against a fixed pure action there is a strict best response, so
        # uniform is not ex-post BAR-robust.
        assert is_bar_robust(game, uniform, 0)
        assert not is_bar_robust(game, uniform, 1)

    def test_altruists_shrink_byzantine_sets(self):
        game = bargaining_game(4)
        stay = profile_as_mixed((0,) * 4, game.num_actions)
        # If everyone else is altruistic, only the rational player could
        # be Byzantine -- but Byzantine sets exclude altruists, and with
        # b=1 the only remaining candidate is the rational player itself;
        # then there is no rational player left to deviate.
        assert is_bar_robust(game, stay, 1, altruists={0, 1, 2})

    def test_switching_cost_rescue(self):
        game = bargaining_game(4)
        cost = switching_cost_rescues(game, (0, 0, 0, 0), 1)
        assert cost == pytest.approx(1.0)
        # And zero cost suffices when already robust.
        pd = prisoners_dilemma()
        assert switching_cost_rescues(pd, (1, 1), 0) == 0.0

    def test_coordination_game_bar(self):
        game = coordination_01_game(4)
        all_zero = profile_as_mixed((0,) * 4, game.num_actions)
        # A Byzantine playing 1 makes "join them at 1" profitable (pair
        # payoff 2): not BAR-robust either.
        assert not is_bar_robust(game, all_zero, 1)

    def test_invalid_altruists(self):
        game = prisoners_dilemma()
        dd = profile_as_mixed((1, 1), game.num_actions)
        with pytest.raises(ValueError):
            is_bar_robust(game, dd, 0, altruists={7})


class TestVertexEnumeration:
    def test_agrees_with_support_enumeration(self):
        from repro.solvers.support_enumeration import support_enumeration
        from repro.solvers.vertex_enumeration import vertex_enumeration
        from repro.games.classics import (
            battle_of_the_sexes,
            chicken,
            roshambo,
            stag_hunt,
        )

        for game in (chicken(), stag_hunt(), battle_of_the_sexes(), roshambo()):
            ve = vertex_enumeration(game)
            se = support_enumeration(game)
            assert len(ve) == len(se), game.name
            for profile in ve:
                assert game.is_nash(profile, tol=1e-6)

    def test_two_player_only(self):
        from repro.solvers.vertex_enumeration import vertex_enumeration

        with pytest.raises(ValueError):
            vertex_enumeration(coordination_01_game(3))
