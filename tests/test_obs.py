"""Observability suite: metrics units, trace stitching, reason codes.

Covers the repro.obs acceptance scenarios: histogram bucket/percentile
math in seconds, the Prometheus exposition round-trip (render → parse,
in-process and over a live ``/v1/metrics``), the no-op registry's
zero-cost contract, end-to-end trace propagation — client span →
``X-Repro-Trace`` header → service job span → worker execution span →
quorum-accept span, stitched from ``GET /v1/trace/<id>`` after one real
HTTP sweep — structured quarantine reason codes on coordinator strikes,
the client's transport-stats snapshot, and the election counter
incrementing exactly once when a replicated fabric's leader is killed.
"""

import threading
import time
import urllib.request

import pytest

from repro.cluster.coordinator import ClusterCoordinator, unit_digest
from repro.cluster.worker import corrupt_rows, run_worker_thread
from repro.dist.faults import ByzantineRandomAdversary
from repro.obs.logs import log_event, recent_events, set_log_quiet
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    _log_spaced_buckets,
    default_registry,
    null_registry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.trace import (
    HEADER,
    SpanRecorder,
    activate,
    current_context,
    default_recorder,
    format_header,
    new_trace,
    parse_header,
    span,
)
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

from test_cluster import drain, e1_cases, honest_rows, submit_async
from test_replica import Fabric, wait_until

E1 = "coordination_robustness"


# -- metrics core -------------------------------------------------------


def test_log_spaced_buckets_are_monotonic_and_span_the_range():
    bounds = _log_spaced_buckets(1e-4, 64.0, per_decade=4)
    assert bounds == DEFAULT_BUCKETS
    assert all(a < b for a, b in zip(bounds, bounds[1:]))
    assert bounds[0] <= 1e-4 * 1.0001
    # The ladder tops out within one log step of the requested ceiling.
    assert bounds[-1] >= 64.0 / 10.0 ** (1.0 / 4)


def test_histogram_percentiles_are_in_seconds():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_test_seconds", "test")
    for _ in range(50):
        hist.observe(0.001)
    for _ in range(45):
        hist.observe(0.010)
    for _ in range(5):
        hist.observe(0.100)
    p50, p95, p99 = hist.percentiles((0.5, 0.95, 0.99))
    # Bucketed percentiles: the answer lands in the right bucket, so
    # it is within one log-spaced bucket's width of the true value.
    assert 0.0005 < p50 < 0.002
    assert 0.005 < p95 < 0.02
    assert 0.05 < p99 < 0.2
    assert hist.count == 100
    assert hist.sum == pytest.approx(50 * 0.001 + 45 * 0.010 + 5 * 0.100)


def test_counter_gauge_and_labelled_children():
    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_test_requests_total", "test", labels=("route", "status")
    )
    requests.labels("/v1/health", "200").inc()
    requests.labels("/v1/health", "200").inc(2)
    requests.labels("/v1/jobs/{id}", "404").inc()
    children = dict(requests.children())
    assert children[("/v1/health", "200")].value == 3
    assert children[("/v1/jobs/{id}", "404")].value == 1
    gauge = registry.gauge("repro_test_gauge", "test")
    gauge.set(4.0)
    gauge.inc()
    gauge.dec(2.0)
    assert gauge.value == 3.0
    gauge.set_fn(lambda: 7.5)
    assert gauge.value == 7.5


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("repro_test_conflict", "test")
    with pytest.raises(ValueError):
        registry.gauge("repro_test_conflict", "test")


def test_null_registry_is_free():
    """Disabled observability costs nothing: one shared no-op object."""
    registry = null_registry()
    assert registry.enabled is False
    counter = registry.counter("repro_x_total", "x")
    hist = registry.histogram("repro_x_seconds", "x")
    gauge = registry.gauge("repro_x", "x", labels=("a",))
    # Every family, every kind, every labels() call: the same no-op
    # singleton — no allocation, no state, nothing retained.
    assert counter is hist is gauge is gauge.labels("anything")
    counter.inc()
    hist.observe(1.0)
    gauge.set(5.0)
    assert counter.value == 0
    assert hist.count == 0
    assert registry.families() == []
    assert render_prometheus(registry) == ""


def test_exposition_round_trip():
    registry = MetricsRegistry()
    registry.counter("repro_rt_total", "round trip").inc(3)
    registry.gauge("repro_rt_gauge", "round trip").set(2.5)
    hist = registry.histogram("repro_rt_seconds", "round trip")
    hist.observe(0.002)
    hist.observe(0.030)
    text = render_prometheus(registry)
    assert "# TYPE repro_rt_total counter" in text
    assert "# TYPE repro_rt_seconds histogram" in text
    samples = parse_prometheus(text)
    assert samples[("repro_rt_total", ())] == 3
    assert samples[("repro_rt_gauge", ())] == 2.5
    assert samples[("repro_rt_seconds_count", ())] == 2
    assert samples[("repro_rt_seconds_sum", ())] == pytest.approx(0.032)
    # Cumulative buckets: the +Inf bucket equals the count.
    assert samples[("repro_rt_seconds_bucket", (("le", "+Inf"),))] == 2


# -- trace core ---------------------------------------------------------


def test_trace_header_round_trip():
    ctx = new_trace()
    assert len(ctx.trace_id) == 32
    assert len(ctx.span_id) == 16
    parsed = parse_header(format_header(ctx))
    assert parsed == ctx
    assert parse_header("not-a-trace") is None
    assert parse_header("") is None
    assert HEADER == "X-Repro-Trace"


def test_spans_nest_and_record_parentage():
    recorder = SpanRecorder()
    root = new_trace()
    with activate(root):
        with span("outer", "test", recorder=recorder) as outer_ctx:
            assert current_context() == outer_ctx
            with span("inner", "test", recorder=recorder):
                time.sleep(0.002)
    assert current_context() is None
    spans = {s["name"]: s for s in recorder.export(root.trace_id)}
    assert spans["outer"]["parent_id"] == root.span_id
    assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["inner"]["duration"] >= 0.002
    # Outside any trace, span() is a free no-op.
    with span("untraced", "test", recorder=recorder) as ctx:
        assert ctx is None
    assert len(recorder) == 2


def test_span_recorder_ingest_dedups_and_bounds():
    recorder = SpanRecorder(capacity=4)
    root = new_trace()
    with activate(root):
        with span("once", "test", recorder=recorder):
            pass
    exported = recorder.export(root.trace_id)
    assert recorder.ingest(exported) == 0  # already seen
    assert len(recorder) == 1
    for i in range(10):
        with activate(new_trace()):
            with span(f"s{i}", "test", recorder=recorder):
                pass
    assert len(recorder) == 4  # bounded ring


def test_structured_log_ring_and_filters():
    set_log_quiet(True)
    try:
        root = new_trace()
        with activate(root):
            log_event("obs.test_event", "test", detail=42)
        events = recent_events(event="obs.test_event")
        assert events
        last = events[-1]
        assert last["component"] == "test"
        assert last["detail"] == 42
        assert last["trace_id"] == root.trace_id
        assert "ts" in last and "mono" in last
    finally:
        set_log_quiet(False)


# -- live HTTP surface --------------------------------------------------


@pytest.fixture
def live_server(tmp_path):
    """One async server over a ClusterCoordinator, plus teardown."""
    store = ResultStore(str(tmp_path / "store"))
    coordinator = ClusterCoordinator(store=store)
    server, _thread = start_async_server(store=store, coordinator=coordinator)
    host, port = server.server_address[:2]
    stop = threading.Event()
    threads = []

    def spawn(n=2):
        workers = []
        for i in range(n):
            worker, thread = run_worker_thread(
                ServiceClient(f"http://{host}:{port}"),
                name=f"w{i}",
                stop=stop,
                poll=0.02,
            )
            workers.append(worker)
            threads.append(thread)
        return workers

    yield f"http://{host}:{port}", spawn
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    server.shutdown()
    server.server_close()


def test_metrics_endpoint_serves_prometheus_text(live_server):
    url, _spawn = live_server
    client = ServiceClient(url)
    client.health()
    with urllib.request.urlopen(f"{url}/v1/metrics", timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
    samples = parse_prometheus(text)
    hits = [
        value
        for (name, labels), value in samples.items()
        if name == "repro_http_requests_total"
        and ("route", "/v1/health") in labels
    ]
    assert hits and hits[0] >= 1
    assert any(
        name == "repro_cluster_workers" for name, _ in samples
    )


def test_trace_ingest_and_fetch_round_trip(live_server):
    url, _spawn = live_server
    client = ServiceClient(url)
    recorder = SpanRecorder()
    root = new_trace()
    with activate(root):
        with span("external.step", "client", recorder=recorder):
            pass
    assert client.push_spans(recorder.drain()) == 1
    fetched = client.trace(root.trace_id)
    assert fetched["trace_id"] == root.trace_id
    names = [s["name"] for s in fetched["spans"]]
    assert "external.step" in names


def test_sweep_trace_stitches_client_service_worker_quorum(live_server):
    """One HTTP sweep yields one trace spanning every fabric layer."""
    url, spawn = live_server
    spawn(2)
    client = ServiceClient(url)
    _job, results = client.run_sweep(scenarios=[E1], executor="cluster")
    assert len(results) == 4
    trace_id = client.stats()["last_trace_id"]
    assert trace_id and len(trace_id) == 32

    def components():
        spans = client.trace(trace_id)["spans"]
        return {s["component"] for s in spans}

    # Worker spans arrive via their own POST /v1/trace push, so poll
    # briefly rather than assume ordering against run_sweep's return.
    wait_until(
        lambda: {"client", "service", "worker", "cluster"} <= components()
    )
    spans = client.trace(trace_id)["spans"]
    assert all(s["trace_id"] == trace_id for s in spans)
    by_name = {}
    for item in spans:
        by_name.setdefault(item["name"], item)
    assert "client.run_sweep" in by_name
    assert "job.run" in by_name
    assert "worker.run_unit" in by_name
    assert "quorum.accept" in by_name
    http_spans = [s for s in spans if s["name"].startswith("http ")]
    assert any("/v1/sweeps" in s["name"] for s in http_spans)


def test_events_endpoint_surfaces_redirect_log(live_server):
    url, _spawn = live_server
    client = ServiceClient(url)
    client.health()
    set_log_quiet(True)
    try:
        log_event("obs.http_probe", "test")
    finally:
        set_log_quiet(False)
    events = client.events()["events"]
    assert any(e["event"] == "obs.http_probe" for e in events)


def test_client_stats_snapshot(live_server):
    url, _spawn = live_server
    client = ServiceClient(url)
    client.health()
    client.health()
    stats = client.stats()
    assert stats["requests"] >= 2
    for key in (
        "retries",
        "replays",
        "redirects_followed",
        "etag_hits",
        "last_trace_id",
    ):
        assert key in stats


# -- quarantine reason codes -------------------------------------------


def test_outvoted_strike_carries_lost_quorum_reason():
    coordinator = ClusterCoordinator(redundancy=3, quarantine_after=1)
    byz = coordinator.register_worker("byz")["worker_id"]
    h1 = coordinator.register_worker("h1")["worker_id"]
    h2 = coordinator.register_worker("h2")["worker_id"]
    adversary = ByzantineRandomAdversary({0}, seed=0)
    holder, thread = submit_async(coordinator, e1_cases(), redundancy=3)
    unit = coordinator.lease(byz)["unit"]
    bad = corrupt_rows(adversary, 0, honest_rows(unit))
    assert unit_digest(bad) != unit_digest(honest_rows(unit))
    coordinator.complete(byz, unit["unit_id"], bad)
    coordinator.complete(h1, unit["unit_id"], honest_rows(unit))
    coordinator.complete(h2, unit["unit_id"], honest_rows(unit))
    workers = {w["name"]: w for w in coordinator.workers()}
    assert workers["byz"]["strike_reasons"] == ["lost-quorum"]
    assert workers["byz"]["quarantine_reason"] == "lost-quorum"
    assert workers["h1"]["strike_reasons"] == []
    assert workers["h1"]["quarantine_reason"] is None
    # Drain so the submit thread finishes cleanly.
    while drain(coordinator, h1) + drain(coordinator, h2) > 0:
        pass
    thread.join(timeout=10)
    assert "error" not in holder


def test_stale_contradicting_vote_carries_stale_vote_reason():
    coordinator = ClusterCoordinator(
        quarantine_after=99, lease_ttl=0.1
    )
    slow = coordinator.register_worker("slow")["worker_id"]
    fast = coordinator.register_worker("fast")["worker_id"]
    holder, thread = submit_async(coordinator, e1_cases()[:2])
    unit = coordinator.lease(slow)["unit"]
    time.sleep(0.15)  # the straggler's lease expires...
    reassigned = coordinator.lease(fast)["unit"]
    assert reassigned["unit_id"] == unit["unit_id"]
    coordinator.complete(fast, unit["unit_id"], honest_rows(unit))
    # ...and its late, contradicting completion earns the reason code.
    reply = coordinator.complete(slow, unit["unit_id"], [{"garbage": 1}])
    assert reply["status"] == "stale"
    workers = {w["name"]: w for w in coordinator.workers()}
    assert workers["slow"]["strike_reasons"] == ["stale-vote"]
    assert workers["slow"]["quarantine_reason"] is None
    while drain(coordinator, fast) + drain(coordinator, slow) > 0:
        pass
    thread.join(timeout=10)
    assert "error" not in holder


def test_colluding_quorum_on_invalid_payload_carries_contradiction():
    coordinator = ClusterCoordinator(redundancy=3, quarantine_after=1)
    a = coordinator.register_worker("a")["worker_id"]
    b = coordinator.register_worker("b")["worker_id"]
    holder, thread = submit_async(
        coordinator, e1_cases()[:1], redundancy=3, timeout=5.0
    )
    unit = coordinator.lease(a)["unit"]
    garbage = [{"not": "a result"}]
    coordinator.complete(a, unit["unit_id"], garbage)
    coordinator.complete(b, unit["unit_id"], garbage)
    workers = {w["name"]: w for w in coordinator.workers()}
    assert workers["a"]["strike_reasons"] == ["contradiction"]
    assert workers["b"]["strike_reasons"] == ["contradiction"]
    assert workers["a"]["quarantined"] is True
    thread.join(timeout=10)
    assert "error" in holder  # the sweep fails loudly, never trusts it


# -- replicated fabric: election counter + fleet gauges -----------------


class ObsFabric(Fabric):
    """A chaos fabric with one private MetricsRegistry per replica."""

    def __init__(self, tmp_path, n=3, **kwargs):
        self.registries = [MetricsRegistry() for _ in range(n)]
        super().__init__(tmp_path, n=n, **kwargs)

    def _boot(self, i, **kwargs):
        kwargs.setdefault("registry", self.registries[i])
        return super()._boot(i, **kwargs)


def _counter_value(registry, name):
    samples = parse_prometheus(render_prometheus(registry))
    return samples.get((name, ()), 0.0)


def _gauge_value(registry, name):
    samples = parse_prometheus(render_prometheus(registry))
    return samples.get((name, ()))


def test_election_counter_increments_exactly_once_per_leader_kill(tmp_path):
    fabric = ObsFabric(tmp_path, n=3, **{"fsync": False})
    try:
        leader = fabric.wait_leader()
        survivors = [r for r in fabric.replicas if r is not leader]
        # Every live replica agrees on the term; exactly one leads.
        term = leader.raft_status()["term"]
        for replica, registry in zip(fabric.replicas, fabric.registries):
            assert _gauge_value(registry, "repro_raft_term") == term
        leaders = [
            _gauge_value(registry, "repro_raft_is_leader")
            for registry in fabric.registries
        ]
        assert sum(leaders) == 1
        heartbeats = _counter_value(
            fabric.registries[fabric.replicas.index(leader)],
            "repro_raft_heartbeats_total",
        )
        assert heartbeats >= 1
        # Disjoint election timeouts make the succession deterministic:
        # the first survivor always fires (and wins) before the second
        # survivor's alarm, so exactly one election is started.
        survivors[0].election_timeout = (0.2, 0.3)
        survivors[1].election_timeout = (2.5, 3.0)
        time.sleep(0.3)  # let heartbeats re-arm both alarms
        baseline = sum(
            _counter_value(
                fabric.registries[fabric.replicas.index(r)],
                "repro_raft_elections_total",
            )
            for r in survivors
        )
        fabric.kill(leader)
        wait_until(
            lambda: any(
                r.raft_status()["role"] == "leader" for r in survivors
            )
        )
        time.sleep(0.3)  # would catch a spurious second election
        after = sum(
            _counter_value(
                fabric.registries[fabric.replicas.index(r)],
                "repro_raft_elections_total",
            )
            for r in survivors
        )
        assert after - baseline == 1
        # fsync histogram saw the log appends that carried the election.
        for r in survivors:
            registry = fabric.registries[fabric.replicas.index(r)]
            assert (
                _counter_value(registry, "repro_log_fsync_seconds_count") >= 1
            )
    finally:
        fabric.teardown()
