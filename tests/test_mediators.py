"""Tests for mediators: Γd, cheap talk (ΓCT), punishment strategies."""

import numpy as np
import pytest

from repro.games.bayesian import BayesianGame
from repro.games.classics import (
    bargaining_game,
    byzantine_agreement_game,
    chicken,
    prisoners_dilemma,
)
from repro.mediators.base import (
    DeterministicMediator,
    Deviation,
    MediatedGame,
    TableMediator,
)
from repro.mediators.cheap_talk import (
    CheapTalkSimulation,
    distributions_match,
)
from repro.mediators.punishment import (
    has_punishment_strategy,
    minmax_punishment,
)


def byzantine_mediator(n: int) -> DeterministicMediator:
    game = byzantine_agreement_game(n)
    return DeterministicMediator(
        game.num_types, lambda types: tuple([types[0]] * n)
    )


class TestMediatorObjects:
    def test_deterministic_mediator_table(self):
        med = byzantine_mediator(3)
        assert med.recommendation_distribution((1, 0, 0)) == {(1, 1, 1): 1.0}
        assert med.recommendation_distribution((0, 0, 0)) == {(0, 0, 0): 1.0}

    def test_table_mediator_validates_distributions(self):
        with pytest.raises(ValueError):
            TableMediator({(0,): {(0,): 0.5, (1,): 0.6}})

    def test_sampling_respects_distribution(self):
        med = TableMediator({(0,): {(0,): 0.25, (1,): 0.75}})
        rng = np.random.default_rng(0)
        draws = [med.sample((0,), rng) for _ in range(2000)]
        frac = sum(1 for d in draws if d == (1,)) / len(draws)
        assert abs(frac - 0.75) < 0.05

    def test_unknown_type_profile(self):
        med = TableMediator({(0,): {(0,): 1.0}})
        with pytest.raises(KeyError):
            med.recommendation_distribution((1,))


class TestMediatedGame:
    def test_honest_utilities_byzantine(self):
        n = 4
        game = byzantine_agreement_game(n)
        mediated = MediatedGame(game, byzantine_mediator(n))
        np.testing.assert_allclose(mediated.honest_utilities(), np.ones(n))

    def test_honest_is_equilibrium(self):
        game = byzantine_agreement_game(3)
        mediated = MediatedGame(game, byzantine_mediator(3))
        assert mediated.is_honest_equilibrium()

    def test_action_distribution_with_deviation(self):
        n = 3
        game = byzantine_agreement_game(n)
        mediated = MediatedGame(game, byzantine_mediator(n))
        # The general misreports its type (reports 0 whatever it is).
        lie = Deviation(
            report_map=(0, 0),
            action_map={(t, r): r for t in range(2) for r in range(2)},
        )
        dist = mediated.action_distribution((1, 0, 0), {0: lie})
        assert dist == {(0, 0, 0): 1.0}

    def test_deviation_space_size(self):
        game = byzantine_agreement_game(3)
        mediated = MediatedGame(game, byzantine_mediator(3))
        # General: 2 types, 2 actions: 2^2 report maps * 2^(2*2) action maps.
        assert len(list(mediated.deviation_space(0))) == 4 * 16
        # Non-general: 1 type: 1 report map * 2^2 action maps.
        assert len(list(mediated.deviation_space(1))) == 4

    def test_honest_deviation_detection(self):
        honest = Deviation.honest(2, 2)
        assert honest.is_honest()
        crooked = Deviation(
            report_map=(1, 1),
            action_map={(t, r): r for t in range(2) for r in range(2)},
        )
        assert not crooked.is_honest()

    def test_robustness_of_byzantine_mediator(self):
        n = 4
        game = byzantine_agreement_game(n)
        mediated = MediatedGame(game, byzantine_mediator(n))
        # Resilient: no coalition gains (payoff already maximal at 1).
        assert mediated.is_honest_k_resilient(2)
        # Immune: a deviator disobeying the mediator breaks agreement and
        # *does* hurt the others, so honesty is NOT 1-immune here.
        assert not mediated.is_honest_t_immune(1)


class TestCheapTalk:
    @pytest.fixture(scope="class")
    def simulation(self):
        n = 5
        game = byzantine_agreement_game(n)
        return CheapTalkSimulation(
            game, byzantine_mediator(n), t=1, coin_resolution=8
        )

    def test_honest_run_matches_mediator(self, simulation):
        result = simulation.run_once(
            types=(1, 0, 0, 0, 0), rng=np.random.default_rng(0)
        )
        assert result.recommended == (1, 1, 1, 1, 1)
        assert result.played == result.recommended
        assert not result.punished

    def test_corrupted_party_tolerated(self, simulation):
        # n=5, t=1 >= 3t+1 is false (need 4); here n=5 >= t + 2e + 1 with
        # e=1, so robust decoding still succeeds.
        result = simulation.run_once(
            types=(0, 0, 0, 0, 0),
            corrupted={2},
            rng=np.random.default_rng(1),
        )
        assert result.played == (0, 0, 0, 0, 0)

    def test_too_many_corruptions_rejected(self, simulation):
        with pytest.raises(ValueError):
            simulation.run_once(corrupted={1, 2})

    def test_implements_mediator_distribution(self, simulation):
        assert simulation.implements_mediator(n_samples=40, seed=5)

    def test_randomized_mediator_quantization(self):
        def payoff_fn(types, actions):
            return [1.0, 1.0]

        game = BayesianGame(
            [1, 1], [2, 2], np.ones((1, 1)), payoff_fn, name="toy"
        )
        mediator = TableMediator(
            {(0, 0): {(0, 0): 0.5, (1, 1): 0.5}}
        )
        sim = CheapTalkSimulation(game, mediator, t=0, coin_resolution=16)
        dist = sim.quantized_distribution((0, 0))
        assert dist[(0, 0)] == pytest.approx(0.5)
        empirical = sim.sample_action_distribution((0, 0), 200, seed=3)
        assert distributions_match(empirical, dist, 0.12)

    def test_smpc_threshold_validated(self):
        game = byzantine_agreement_game(3)
        with pytest.raises(ValueError):
            CheapTalkSimulation(game, byzantine_mediator(3), t=2)


class TestPunishment:
    def test_minmax_in_pd(self):
        game = prisoners_dilemma()
        value, profile = minmax_punishment(game, 0)
        # Opponent defects; best response is defect: payoff -3.
        assert value == -3.0
        assert profile[1] == 1

    def test_pd_has_punishment_for_cc(self):
        game = prisoners_dilemma()
        spec = has_punishment_strategy(game, [3.0, 3.0], max_deviators=0)
        assert spec is not None
        assert spec.profile == (1, 1)

    def test_punishment_against_one_deviator(self):
        game = prisoners_dilemma()
        # A single deviator against (D, D) can get at most -3 < 3.
        spec = has_punishment_strategy(game, [3.0, 3.0], max_deviators=1)
        assert spec is not None
        assert spec.margin > 0

    def test_no_punishment_when_equilibrium_too_low(self):
        game = prisoners_dilemma()
        # Nobody can be pushed strictly below -3 (the minmax); with
        # deviators allowed, a deviator can always secure >= -3.
        spec = has_punishment_strategy(game, [-3.0, -3.0], max_deviators=1)
        assert spec is None

    def test_bargaining_game_punishment(self):
        game = bargaining_game(3)
        # All-leave gives each player 1 < 2 and a lone deviator (staying)
        # gets 0 < 2: (k+t)=1 punishment exists for the all-stay payoffs.
        spec = has_punishment_strategy(game, [2.0] * 3, max_deviators=1)
        assert spec is not None
        # All-leave qualifies (a lone deviator gets at most 1 < 2), as do
        # profiles where the deviator faces an already-broken bargain.
        assert spec.margin == 1.0
        literal = has_punishment_strategy(
            game, [2.0] * 3, max_deviators=1, punish_whom="everyone"
        )
        assert literal is not None and literal.margin == 1.0

    def test_chicken_no_uniform_punishment(self):
        game = chicken()
        # Against (straight, straight), a deviator swerves and gets -1;
        # equilibrium payoffs of 0 cannot strictly dominate... actually
        # -1 < 0 holds; check the function is consistent either way.
        spec = has_punishment_strategy(game, [0.0, 0.0], max_deviators=1)
        if spec is not None:
            assert spec.margin > 0

    def test_equilibrium_payoff_arity_checked(self):
        with pytest.raises(ValueError):
            has_punishment_strategy(prisoners_dilemma(), [1.0], 1)
