"""Determinism and threshold properties of the repro.dist layer.

Two guarantees the distributed engines promise and the rest of the repo
relies on (benchmark grids, the impossibility search):

1. Seeded runs replay identical transcripts — the only randomness is
   the adversary's / scheduler's / coins' seeded streams.
2. EIG satisfies the BA spec for *every* (n, t, general value, faulty
   set, attack) with n > 3t up to n = 7 — the positive half of the
   Section 2 threshold, checked property-style rather than anecdotally.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.agreement import EIGNode, run_eig_agreement, two_faced_script
from repro.dist.async_sim import RandomScheduler, run_ben_or
from repro.dist.simulator import ByzantineRandomAdversary, ScriptedAdversary


class TestTranscriptDeterminism:
    def test_eig_same_seed_same_transcript(self):
        def once():
            adversary = ByzantineRandomAdversary({3}, seed=11)
            return run_eig_agreement(4, 1, 1, adversary, record_trace=True)

        first, second = once(), once()
        assert first.outputs == second.outputs
        assert first.trace == second.trace
        assert len(first.trace) == first.rounds

    def test_eig_different_seeds_differ_somewhere(self):
        # Not a hard guarantee per seed pair, but across ten seeds the
        # random adversary must not be degenerate.
        transcripts = set()
        for seed in range(10):
            adversary = ByzantineRandomAdversary({3}, seed=seed)
            outcome = run_eig_agreement(4, 1, 1, adversary, record_trace=True)
            transcripts.add(repr(outcome.trace))
        assert len(transcripts) > 1

    def test_eig_decision_announcements_match_outputs(self):
        # The final EIG round distributes each node's decision; honest
        # nodes' audit records must agree with the honest outputs.
        from repro.dist.simulator import Network

        nodes = [EIGNode(i, 4, 1, 1 if i == 0 else None) for i in range(4)]
        adversary = ByzantineRandomAdversary({3}, seed=2)
        Network(nodes, adversary).run(1 + 3)
        for node in nodes[:3]:
            for peer in range(3):
                assert node.peer_decisions[peer] == nodes[peer].output

    def test_ben_or_same_seed_same_transcript(self):
        def once():
            return run_ben_or(
                5, 2, [0, 1, 0, 1, 1], scheduler=RandomScheduler(4), seed=4
            )

        first, second = once(), once()
        assert first.outputs == second.outputs
        assert first.deliveries == second.deliveries
        assert first.transcript == second.transcript


class TestEIGThresholdProperty:
    @given(
        n=st.integers(min_value=4, max_value=7),
        general_value=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=99),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_eig_correct_whenever_n_exceeds_3t(
        self, n, general_value, seed, data
    ):
        t = data.draw(st.integers(min_value=1, max_value=(n - 1) // 3))
        faulty = frozenset(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=t,
                )
            )
        )
        if data.draw(st.booleans()):
            adversary = ByzantineRandomAdversary(faulty, seed=seed)
        else:
            honest = [i for i in range(n) if i not in faulty]
            flip_for = data.draw(
                st.sets(st.sampled_from(honest), min_size=1)
            )
            adversary = ScriptedAdversary(faulty, two_faced_script(flip_for))
        outcome = run_eig_agreement(n, t, general_value, adversary)
        assert outcome.agreement
        if 0 not in faulty:
            assert outcome.correct
            assert set(outcome.outputs.values()) == {general_value}
