"""Cluster fault-tolerance tests against a live server on an ephemeral port.

Real asyncio server + real :class:`ServiceClient` transports:
thread-hosted workers speak the actual ``/v1/workers`` → ``/v1/lease``
→ ``/v1/complete`` protocol.  Covers the ISSUE-5 acceptance scenarios:
a seeded 3-worker sweep byte-identical to the serial run; a worker that
crashes mid-lease (expiry → reassignment); a ByzantineRandom worker
outvoted by the 3-fold quorum and quarantined; worker-local stores
serving warm keys; and the combined crash+Byzantine run.
"""

import threading
import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.worker import run_worker_thread
from repro.dist.faults import ByzantineRandomAdversary, CrashAdversary
from repro.experiments.runner import run_experiments
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import ResultStore

E1 = "coordination_robustness"


@pytest.fixture
def cluster(tmp_path):
    """Factory for a live cluster server; tears everything down after."""
    servers = []
    stop = threading.Event()
    threads = []

    def build(server_store="server", **coordinator_kwargs):
        store = (
            ResultStore(str(tmp_path / "server-cache"))
            if server_store == "server"
            else None
        )
        coordinator = ClusterCoordinator(store=store, **coordinator_kwargs)
        server, _thread = start_async_server(
            store=store, coordinator=coordinator
        )
        servers.append(server)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        return coordinator, store, url

    def spawn(url, **worker_kwargs):
        worker, thread = run_worker_thread(
            ServiceClient(url), stop=stop, **worker_kwargs
        )
        threads.append(thread)
        return worker

    yield build, spawn
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    for server in servers:
        server.shutdown()
        server.server_close()


def wait_until(predicate, timeout=15.0, poll=0.01):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached within timeout")


def test_three_worker_sweep_matches_serial_bytes(cluster):
    build, spawn = cluster
    _coordinator, _store, url = build()
    for i in range(3):
        spawn(url, name=f"h{i}")
    client = ServiceClient(url)
    job, results = client.run_sweep(scenarios=[E1], executor="cluster")
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    assert job["cache_misses"] == 4
    stats = client.cluster()["stats"]
    assert stats["units_completed"] == 4
    assert stats["workers"] == 3


def test_crashed_worker_lease_expires_and_unit_is_reassigned(cluster):
    """3-worker cluster, 1 fail-stop crash: expiry + reassignment finish it."""
    build, spawn = cluster
    coordinator, _store, url = build(lease_ttl=0.4)
    # The crash worker runs alone first so it deterministically
    # completes one unit and then dies holding its second lease.
    crash = spawn(url, name="crash", fault=CrashAdversary({0}, {0: 1}))
    client = ServiceClient(url)
    submitted = client.submit_sweep(scenarios=[E1], executor="cluster")
    wait_until(lambda: crash.crashed)
    assert crash.completed == 1
    # Two replacement workers pick up everything, including the unit
    # whose lease the dead worker still held.
    spawn(url, name="h1")
    spawn(url, name="h2")
    status = client.wait_for_job(submitted["job_id"], timeout=60)
    assert status["status"] == "done"
    _job, results = client.results(submitted["job_id"])
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    assert coordinator.stats()["leases_expired"] >= 1


def test_byzantine_random_worker_is_outvoted_and_quarantined(cluster):
    """ByzantineRandom (seed 0: first vote corrupt) loses the 3-fold quorum."""
    build, spawn = cluster
    coordinator, store, url = build(redundancy=3, quarantine_after=1)
    byz = spawn(
        url, name="byz", fault=ByzantineRandomAdversary({0}, seed=0)
    )
    client = ServiceClient(url)
    submitted = client.submit_sweep(
        scenarios=[E1], executor="cluster", redundancy=3
    )
    # Let the Byzantine worker cast its (deterministically corrupt)
    # first vote before any honest worker exists.
    wait_until(lambda: coordinator.stats()["votes_received"] >= 1)
    spawn(url, name="h1")
    spawn(url, name="h2")
    status = client.wait_for_job(submitted["job_id"], timeout=60)
    assert status["status"] == "done"
    _job, results = client.results(submitted["job_id"])
    serial = run_experiments(scenarios=[E1])
    assert results.payload_bytes() == serial.payload_bytes()
    registry = {w["name"]: w for w in client.cluster()["workers"]}
    assert registry["byz"]["quarantined"] is True
    assert registry["byz"]["strikes"] >= 1
    assert registry["h1"]["quarantined"] is False
    assert registry["h2"]["quarantined"] is False
    # Every accepted unit went through a replication-verified write.
    assert store.stats()["quorum_puts"] == 4
    # The worker loop itself learns of its quarantine and stops.
    wait_until(lambda: byz.quarantined)


def test_cluster_survives_crash_plus_byzantine_and_matches_serial(cluster):
    """The acceptance run: E1-family sweep, one crash, one Byzantine.

    Three computing workers (two honest, one that fail-stops mid-lease)
    plus a ByzantineRandom adversary, redundancy 3: the sweep completes
    and its deterministic payload is byte-identical to the serial run.
    """
    build, spawn = cluster
    coordinator, _store, url = build(
        redundancy=3, quarantine_after=1, lease_ttl=0.4
    )
    byz = spawn(url, name="byz", fault=ByzantineRandomAdversary({0}, seed=0))
    client = ServiceClient(url)
    submitted = client.submit_sweep(
        scenarios=[E1], replications=3, executor="cluster", redundancy=3
    )
    wait_until(lambda: coordinator.stats()["votes_received"] >= 1)
    crash = spawn(url, name="crash", fault=CrashAdversary({0}, {0: 1}))
    spawn(url, name="h1")
    spawn(url, name="h2")
    status = client.wait_for_job(submitted["job_id"], timeout=120)
    assert status["status"] == "done"
    _job, results = client.results(submitted["job_id"])
    serial = run_experiments(scenarios=[E1], replications=3)
    assert len(results) == 12
    assert results.payload_bytes() == serial.payload_bytes()
    assert coordinator.stats()["units_completed"] == 12
    registry = {w["name"]: w for w in client.cluster()["workers"]}
    assert registry["byz"]["quarantined"] is True
    # The crash worker contributed at most one (honest) completion
    # before fail-stopping; the sweep finished without it.
    assert crash.completed <= 1


def test_worker_local_store_serves_warm_keys(cluster, tmp_path):
    """With no server store, re-running a sweep hits the workers' caches."""
    build, spawn = cluster
    _coordinator, _store, url = build(server_store=None)
    worker_store = ResultStore(str(tmp_path / "worker-cache"))
    spawn(url, name="w1", store=worker_store)
    spawn(url, name="w2", store=worker_store)
    client = ServiceClient(url)
    assert client.health()["store"] is None
    _job1, first = client.run_sweep(scenarios=[E1], executor="cluster")
    misses = worker_store.misses
    assert misses >= 4
    _job2, second = client.run_sweep(scenarios=[E1], executor="cluster")
    # The replay is served from the worker-local content-addressed
    # store: byte-identical rows (original elapsed included), no
    # recomputation.
    assert second.to_json_obj() == first.to_json_obj()
    assert worker_store.hits >= 4
    assert worker_store.misses == misses


def test_cluster_job_deadline_frees_the_job_slot(tmp_path):
    """A sweep whose quorum can never form errors out instead of wedging."""
    from repro.service.jobs import JobManager

    coordinator = ClusterCoordinator(redundancy=3)
    manager = JobManager(coordinator=coordinator, cluster_timeout=0.4)
    server, _thread = start_async_server(manager=manager)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        # No workers registered: the quorum can never form.
        submitted = client.submit_sweep(
            scenarios=[E1], executor="cluster", redundancy=3
        )
        status = client.wait_for_job(submitted["job_id"], timeout=30)
        assert status["status"] == "error"
        assert "timed out" in status["error"]
        assert client.health()["manager"]["inflight"] == 0
    finally:
        server.shutdown()
        server.server_close()


def test_cluster_sweep_without_coordinator_fails_clearly(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        submitted = client.submit_sweep(scenarios=[E1], executor="cluster")
        status = client.wait_for_job(submitted["job_id"], timeout=30)
        assert status["status"] == "error"
        assert "cluster coordinator" in status["error"]
        with pytest.raises(ServiceError, match="cluster coordinator"):
            client.cluster()
        with pytest.raises(ServiceError, match="cluster coordinator"):
            client.register_worker("w")
    finally:
        server.shutdown()
        server.server_close()


def test_health_reports_cluster_block(cluster):
    build, _spawn = cluster
    coordinator, _store, url = build(redundancy=3)
    payload = ServiceClient(url).health()
    assert payload["cluster"]["redundancy"] == 3
    assert payload["cluster"]["workers"] == 0
    assert coordinator.stats()["open_units"] == 0
