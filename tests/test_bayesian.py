"""Unit tests for repro.games.bayesian."""

import numpy as np
import pytest

from repro.games.bayesian import BayesianGame
from repro.games.classics import byzantine_agreement_game, prisoners_dilemma


def two_type_coordination() -> BayesianGame:
    """A 2-player game where player 0's type selects which action to match."""

    def payoff_fn(types, actions):
        target = types[0]
        value = 1.0 if actions[0] == actions[1] == target else 0.0
        return [value, value]

    prior = np.array([[0.5], [0.5]])
    return BayesianGame(
        num_types=[2, 1],
        num_actions=[2, 2],
        prior=prior,
        payoff_fn=payoff_fn,
        name="type coordination",
    )


class TestConstruction:
    def test_shapes(self):
        game = two_type_coordination()
        assert game.n_players == 2
        assert game.payoff_table.shape == (2, 2, 1, 2, 2)

    def test_prior_must_be_distribution(self):
        with pytest.raises(ValueError):
            BayesianGame(
                [1, 1], [2, 2], np.array([[2.0]]), lambda t, a: [0, 0]
            )

    def test_prior_shape_checked(self):
        with pytest.raises(ValueError):
            BayesianGame(
                [2, 1], [2, 2], np.array([[1.0]]), lambda t, a: [0, 0]
            )


class TestStrategies:
    def test_pure_strategy_matrix(self):
        game = two_type_coordination()
        strat = game.pure_strategy(0, [0, 1])
        np.testing.assert_allclose(strat, [[1, 0], [0, 1]])

    def test_uniform_strategy(self):
        game = two_type_coordination()
        strat = game.uniform_strategy(1)
        np.testing.assert_allclose(strat, [[0.5, 0.5]])

    def test_validate_strategy_rejects_bad_rows(self):
        game = two_type_coordination()
        with pytest.raises(ValueError):
            game.validate_strategy(0, np.array([[0.4, 0.4], [1.0, 0.0]]))

    def test_pure_strategy_space_size(self):
        game = two_type_coordination()
        assert len(list(game.pure_strategy_space(0))) == 4  # 2 actions ^ 2 types
        assert len(list(game.pure_strategy_space(1))) == 2


class TestUtilities:
    def test_truthful_play_payoff(self):
        game = two_type_coordination()
        # Player 0 plays own type; player 1 cannot condition and plays 0.
        p0 = game.pure_strategy(0, [0, 1])
        p1 = game.pure_strategy(1, [0])
        # Match happens only when type is 0: probability 1/2.
        assert game.ex_ante_payoff(0, [p0, p1]) == pytest.approx(0.5)

    def test_interim_payoff_conditions_on_type(self):
        game = two_type_coordination()
        p0 = game.pure_strategy(0, [0, 1])
        p1 = game.pure_strategy(1, [0])
        assert game.interim_payoff(0, 0, [p0, p1]) == pytest.approx(1.0)
        assert game.interim_payoff(0, 1, [p0, p1]) == pytest.approx(0.0)

    def test_conditional_prior_zero_probability_type(self):
        def payoff_fn(types, actions):
            return [0.0, 0.0]

        prior = np.zeros((2, 1))
        prior[0, 0] = 1.0
        game = BayesianGame([2, 1], [2, 2], prior, payoff_fn)
        with pytest.raises(ValueError):
            game.conditional_prior(0, 1)

    def test_type_probability(self):
        game = two_type_coordination()
        assert game.type_probability(0, 0) == pytest.approx(0.5)
        assert game.type_probability(1, 0) == pytest.approx(1.0)


class TestEquilibrium:
    def test_anti_truthful_has_positive_regret(self):
        game = two_type_coordination()
        # Type 0 plays 1 (never matches the target); deviating to 0 earns 1.
        p0 = game.pure_strategy(0, [1, 0])
        p1 = game.pure_strategy(1, [0])
        assert game.interim_regret(0, [p0, p1]) > 0

    def test_truthful_vs_constant_is_equilibrium(self):
        game = two_type_coordination()
        p0 = game.pure_strategy(0, [0, 1])
        p1 = game.pure_strategy(1, [0])
        # Type 1 of player 0 cannot match (p1 plays 0), so no deviation
        # helps; p1 is exactly indifferent between actions.
        assert game.is_bayes_nash([p0, p1])

    def test_pooling_on_zero_is_equilibrium(self):
        game = two_type_coordination()
        p0 = game.pure_strategy(0, [0, 0])
        p1 = game.pure_strategy(1, [0])
        assert game.is_bayes_nash([p0, p1])

    def test_enumeration_finds_pooling_equilibria(self):
        game = two_type_coordination()
        equilibria = game.pure_bayes_nash_equilibria()
        assert ((0, 0), (0,)) in equilibria
        assert ((1, 1), (1,)) in equilibria

    def test_byzantine_game_all_follow_general_is_equilibrium(self):
        game = byzantine_agreement_game(3)
        # Strategy: general plays its type; others must guess -- with a
        # uniform prior any constant guess is a best response only if it
        # matches... the all-attack-if-type-attack profile:
        general = game.pure_strategy(0, [0, 1])
        others = [game.pure_strategy(i, [0]) for i in (1, 2)]
        # Not an equilibrium in general (others cannot see the type), but
        # utilities must still be well defined and bounded by 1.
        value = game.ex_ante_payoff(0, [general] + others)
        assert 0.0 <= value <= 1.0


class TestAgentForm:
    def test_agent_form_shape(self):
        game = two_type_coordination()
        normal = game.agent_form()
        assert normal.num_actions == (4, 2)

    def test_agent_form_payoffs_match(self):
        game = two_type_coordination()
        normal = game.agent_form()
        p0 = game.pure_strategy(0, [0, 1])
        p1 = game.pure_strategy(1, [0])
        # strategy (0,1) is index 1 in lexicographic product order.
        assert normal.payoff(0, (1, 0)) == pytest.approx(
            game.ex_ante_payoff(0, [p0, p1])
        )

    def test_from_normal_form_roundtrip(self):
        pd = prisoners_dilemma()
        bayesian = BayesianGame.from_normal_form(pd)
        agent = bayesian.agent_form()
        np.testing.assert_allclose(agent.payoffs, pd.payoffs)
