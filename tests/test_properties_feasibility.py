"""Property-based tests for the feasibility procedure and protocol layers.

The ADGH decision procedure has clean structural invariants — monotone in
``n``, anti-monotone in ``k`` and ``t``, monotone in resources — which
hypothesis checks across the parameter grid.  The cheap-talk helpers'
encode/decode round-trips are checked likewise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import (
    Resources,
    classify_regime,
    mediator_implementability,
)
from repro.mediators.cheap_talk import (
    _decode_action_index,
    _encode_action_profile,
    _encode_type_profile,
)

ALL_RESOURCES = Resources(
    utilities_known=True,
    punishment_strategy=True,
    broadcast=True,
    cryptography=True,
    polynomially_bounded=True,
    pki=True,
)

params = st.tuples(
    st.integers(min_value=2, max_value=30),  # n
    st.integers(min_value=1, max_value=5),  # k
    st.integers(min_value=0, max_value=5),  # t
)

resource_flags = st.builds(
    Resources,
    utilities_known=st.booleans(),
    punishment_strategy=st.booleans(),
    broadcast=st.booleans(),
    cryptography=st.booleans(),
    polynomially_bounded=st.booleans(),
    pki=st.booleans(),
)


class TestFeasibilityProperties:
    @given(params, resource_flags)
    @settings(max_examples=120, deadline=None)
    def test_monotone_in_n(self, nkt, resources):
        n, k, t = nkt
        here = mediator_implementability(n, k, t, resources)
        there = mediator_implementability(n + 1, k, t, resources)
        # Adding a player never destroys implementability (given the same
        # resources): if n works, n+1 works.
        if here.implementable:
            assert there.implementable

    @given(params)
    @settings(max_examples=120, deadline=None)
    def test_anti_monotone_in_t(self, nkt):
        n, k, t = nkt
        here = mediator_implementability(n, k, t, ALL_RESOURCES)
        worse = mediator_implementability(n, k, t + 1, ALL_RESOURCES)
        if worse.implementable:
            assert here.implementable

    @given(params)
    @settings(max_examples=120, deadline=None)
    def test_anti_monotone_in_k(self, nkt):
        n, k, t = nkt
        here = mediator_implementability(n, k, t, ALL_RESOURCES)
        worse = mediator_implementability(n, k + 1, t, ALL_RESOURCES)
        if worse.implementable:
            assert here.implementable

    @given(params, resource_flags)
    @settings(max_examples=120, deadline=None)
    def test_resources_only_help(self, nkt, resources):
        n, k, t = nkt
        bare = mediator_implementability(n, k, t, resources)
        full = mediator_implementability(n, k, t, ALL_RESOURCES)
        if bare.implementable:
            assert full.implementable

    @given(params)
    @settings(max_examples=120, deadline=None)
    def test_exact_beats_epsilon(self, nkt):
        n, k, t = nkt
        v = mediator_implementability(n, k, t, ALL_RESOURCES)
        # epsilon_only is only ever set on implementable verdicts.
        if v.epsilon_only:
            assert v.implementable

    @given(params)
    @settings(max_examples=120, deadline=None)
    def test_unconditional_band_matches_formula(self, nkt):
        n, k, t = nkt
        v = mediator_implementability(n, k, t, Resources())
        assert v.implementable == (n > 3 * k + 3 * t)

    @given(params)
    @settings(max_examples=120, deadline=None)
    def test_nothing_below_k_plus_t(self, nkt):
        n, k, t = nkt
        if n <= k + t:
            v = mediator_implementability(n, k, t, ALL_RESOURCES)
            assert not v.implementable

    @given(params)
    @settings(max_examples=60, deadline=None)
    def test_regime_classification_total(self, nkt):
        n, k, t = nkt
        # Every parameter combination lands in exactly one regime and the
        # verdict quotes a provenance sentence.
        regime = classify_regime(n, k, t)
        verdict = mediator_implementability(n, k, t)
        assert verdict.regime is regime
        assert verdict.provenance


class TestEncodingRoundTrips:
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
        st.data(),
    )
    def test_type_profile_encoding_injective(self, num_types, data):
        types_a = tuple(
            data.draw(st.integers(0, m - 1)) for m in num_types
        )
        types_b = tuple(
            data.draw(st.integers(0, m - 1)) for m in num_types
        )
        enc_a = _encode_type_profile(types_a, num_types)
        enc_b = _encode_type_profile(types_b, num_types)
        assert (enc_a == enc_b) == (types_a == types_b)

    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
        st.data(),
    )
    def test_action_profile_roundtrip(self, num_actions, data):
        actions = tuple(
            data.draw(st.integers(0, m - 1)) for m in num_actions
        )
        index = _encode_action_profile(actions, num_actions)
        assert _decode_action_index(index, num_actions) == actions


class TestProtocolInvariants:
    @given(st.integers(min_value=0, max_value=9), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_eig_agreement_invariant_over_faulty_sets(self, seed, general_value):
        """For n=5, t=1 every random single-fault adversary preserves
        the BA specification."""
        from repro.dist.agreement import run_eig_agreement
        from repro.dist.simulator import ByzantineRandomAdversary

        faulty = seed % 5
        adversary = ByzantineRandomAdversary({faulty}, seed=seed)
        outcome = run_eig_agreement(5, 1, int(general_value), adversary)
        if faulty == 0:
            assert outcome.agreement
        else:
            assert outcome.correct

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_ben_or_agreement_across_schedules(self, seed):
        from repro.dist.async_sim import RandomScheduler, run_ben_or

        result = run_ben_or(
            4, 1, [seed % 2, (seed + 1) % 2, 1, 0],
            scheduler=RandomScheduler(seed), seed=seed,
        )
        assert result.agreement
