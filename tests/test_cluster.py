"""Direct (no-HTTP) tests of the cluster coordinator's scheduling core.

The coordinator is driven synchronously from the test thread — register,
lease, complete — while the blocking ``execute_cases`` call runs on a
helper thread, so every quorum/strike/expiry decision happens in a
deterministic order: content-address sharding, majority-quorum
acceptance, ByzantineRandom corruption being outvoted and quarantined,
lease expiry and reassignment, stale-vote verification, and the runner's
pluggable-executor integration with a content-addressed store in front.
"""

import threading
import time

import pytest

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterError,
    unit_digest,
)
from repro.cluster.worker import Worker, corrupt_rows, run_worker_thread
from repro.dist.faults import (
    ByzantineRandomAdversary,
    NoFaultAdversary,
)
from repro.experiments.registry import get_scenario
from repro.experiments.runner import (
    _collect_cases,
    _execute_cases,
    run_experiments,
)
from repro.service.store import ResultStore, result_key

E1 = "coordination_robustness"


def e1_cases(base_seed=0, replications=1):
    """The E1 sweep's runner Case tuples (what a sweep submits)."""
    return _collect_cases([E1], None, base_seed, None, replications)


def serial_results(base_seed=0, replications=1):
    """The serial reference run the cluster must agree with byte-for-byte."""
    return run_experiments(
        scenarios=[E1], base_seed=base_seed, replications=replications
    )


def honest_rows(unit):
    """Compute a leased unit's rows exactly as an honest worker would."""
    cases = [
        (
            ref["scenario"],
            ref["family"],
            get_scenario(ref["scenario"]).fn,
            ref["params"],
            ref["seed"],
            ref["replication"],
        )
        for ref in unit["cases"]
    ]
    results = _execute_cases(cases, base_seed=unit["base_seed"])
    return [r.to_dict() for r in results]


def submit_async(coordinator, cases, base_seed=0, redundancy=None, timeout=30.0):
    """Run ``execute_cases`` on a helper thread; returns (holder, thread)."""
    holder = {}

    def run():
        """Capture the sweep's results or error for the test thread."""
        try:
            holder["results"] = coordinator.execute_cases(
                cases, base_seed=base_seed, redundancy=redundancy, timeout=timeout
            )
        except Exception as exc:  # noqa: BLE001 - surfaced via holder
            holder["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while coordinator.stats()["open_units"] == 0:
        if "error" in holder or time.monotonic() > deadline:
            break
        time.sleep(0.005)
    return holder, thread


def drain(coordinator, worker_id, corrupt=None):
    """Lease-and-complete until no unit is leasable to ``worker_id``."""
    completed = 0
    while True:
        reply = coordinator.lease(worker_id)
        if reply["unit"] is None:
            return completed
        rows = honest_rows(reply["unit"])
        if corrupt is not None:
            rows = corrupt(rows)
        coordinator.complete(worker_id, reply["unit"]["unit_id"], rows)
        completed += 1


def test_sharding_is_sorted_by_content_address_key():
    cases = e1_cases()
    coordinator = ClusterCoordinator(unit_size=1)
    units = coordinator._shard(cases, 0, 1)
    keys = [
        result_key(unit["cases"][0]["scenario"], unit["cases"][0]["params"], 0, 0)
        for unit in units
    ]
    assert keys == sorted(keys)
    assert sorted(ref["index"] for unit in units for ref in unit["cases"]) == [
        0,
        1,
        2,
        3,
    ]
    # Sharding twice yields the same assignment, unit ids included —
    # sweep identity is a content hash, so a resubmit regenerates them.
    again = coordinator._shard(cases, 0, 1)
    assert [u["cases"] for u in again] == [u["cases"] for u in units]
    assert [u["unit_id"] for u in again] == [u["unit_id"] for u in units]


def test_single_worker_matches_serial_bytes():
    coordinator = ClusterCoordinator()
    worker_id = coordinator.register_worker("solo")["worker_id"]
    holder, thread = submit_async(coordinator, e1_cases())
    assert drain(coordinator, worker_id) == 4
    thread.join(timeout=10)
    assert "error" not in holder
    results = holder["results"]
    serial = serial_results()
    assert [r.payload_dict() for r in results] == [
        r.payload_dict() for r in serial
    ]


def test_byzantine_random_worker_outvoted_and_quarantined():
    """ByzantineRandom corruption loses the 3-fold quorum and is quarantined.

    Driven in a fixed order: the Byzantine worker votes first on the
    first unit (seed 0's first roll corrupts deterministically), then
    two honest workers supply the majority.
    """
    coordinator = ClusterCoordinator(redundancy=3, quarantine_after=1)
    byz = coordinator.register_worker("byz")["worker_id"]
    h1 = coordinator.register_worker("h1")["worker_id"]
    h2 = coordinator.register_worker("h2")["worker_id"]
    adversary = ByzantineRandomAdversary({0}, seed=0)

    holder, thread = submit_async(coordinator, e1_cases(), redundancy=3)

    lease_byz = coordinator.lease(byz)
    unit = lease_byz["unit"]
    assert unit is not None
    bad = corrupt_rows(adversary, 0, honest_rows(unit))
    assert unit_digest(bad) != unit_digest(honest_rows(unit))
    reply = coordinator.complete(byz, unit["unit_id"], bad)
    assert reply["status"] == "pending"

    # Two honest votes form the majority; the Byzantine vote loses.
    lease_h1 = coordinator.lease(h1)
    assert lease_h1["unit"]["unit_id"] == unit["unit_id"]
    assert coordinator.complete(
        h1, unit["unit_id"], honest_rows(unit)
    )["status"] == "pending"
    lease_h2 = coordinator.lease(h2)
    assert lease_h2["unit"]["unit_id"] == unit["unit_id"]
    assert coordinator.complete(
        h2, unit["unit_id"], honest_rows(unit)
    )["status"] == "accepted"

    workers = {w["name"]: w for w in coordinator.workers()}
    assert workers["byz"]["strikes"] == 1
    assert workers["byz"]["quarantined"] is True
    assert coordinator.lease(byz) == {
        "unit": None,
        "open": 3,
        "quarantined": True,
    }

    # The two honest workers finish the sweep between them.
    while drain(coordinator, h1) + drain(coordinator, h2) > 0:
        pass
    thread.join(timeout=10)
    assert "error" not in holder
    assert [r.payload_dict() for r in holder["results"]] == [
        r.payload_dict() for r in serial_results()
    ]


def test_quarantined_worker_votes_are_ignored():
    coordinator = ClusterCoordinator(redundancy=3, quarantine_after=1)
    byz = coordinator.register_worker("byz")["worker_id"]
    h1 = coordinator.register_worker("h1")["worker_id"]
    h2 = coordinator.register_worker("h2")["worker_id"]
    holder, thread = submit_async(coordinator, e1_cases()[:2], redundancy=3)
    first = coordinator.lease(byz)["unit"]
    coordinator.complete(byz, first["unit_id"], [{"garbage": 1}])
    assert coordinator.complete(
        h1, first["unit_id"], honest_rows(first)
    )["status"] == "pending"
    # Resolution strikes and quarantines byz.
    assert coordinator.complete(
        h2, first["unit_id"], honest_rows(first)
    )["status"] == "accepted"
    # The second unit is still open: a quarantined worker's vote on it
    # is acknowledged but never counted toward the quorum.
    second = coordinator.lease(h1)["unit"]
    assert second is not None
    reply = coordinator.complete(byz, second["unit_id"], [{"garbage": 2}])
    assert reply == {
        "status": "quarantined",
        "accepted": False,
        "quarantined": True,
    }
    assert coordinator.complete(
        h1, second["unit_id"], honest_rows(second)
    )["status"] == "pending"
    assert coordinator.complete(
        h2, second["unit_id"], honest_rows(second)
    )["status"] == "accepted"
    thread.join(timeout=10)
    assert "error" not in holder
    assert len(holder["results"]) == 2


def test_lease_expiry_reassigns_crashed_workers_unit():
    coordinator = ClusterCoordinator(lease_ttl=0.15)
    dead = coordinator.register_worker("dead")["worker_id"]
    live = coordinator.register_worker("live")["worker_id"]
    holder, thread = submit_async(coordinator, e1_cases())
    crashed_unit = coordinator.lease(dead)["unit"]
    assert crashed_unit is not None  # ... and 'dead' never completes it.
    time.sleep(0.2)
    seen = set()
    while True:
        reply = coordinator.lease(live)
        if reply["unit"] is None:
            break
        seen.add(reply["unit"]["unit_id"])
        coordinator.complete(
            live, reply["unit"]["unit_id"], honest_rows(reply["unit"])
        )
    assert crashed_unit["unit_id"] in seen
    assert coordinator.stats()["leases_expired"] >= 1
    thread.join(timeout=10)
    assert "error" not in holder
    assert [r.payload_dict() for r in holder["results"]] == [
        r.payload_dict() for r in serial_results()
    ]


def test_stale_completion_after_acceptance_is_verified():
    coordinator = ClusterCoordinator(lease_ttl=0.1, quarantine_after=2)
    slow = coordinator.register_worker("slow")["worker_id"]
    fast = coordinator.register_worker("fast")["worker_id"]
    holder, thread = submit_async(coordinator, e1_cases()[:2])
    unit = coordinator.lease(slow)["unit"]
    time.sleep(0.15)  # the straggler's lease expires...
    reassigned = coordinator.lease(fast)["unit"]
    assert reassigned["unit_id"] == unit["unit_id"]
    coordinator.complete(fast, unit["unit_id"], honest_rows(unit))

    # The sweep's second unit is still open, so the resolved unit is
    # queryable.  Agreeing late vote: no strike.  Contradicting: strike.
    assert coordinator.complete(
        slow, unit["unit_id"], honest_rows(unit)
    )["status"] == "stale"
    assert {w["name"]: w for w in coordinator.workers()}["slow"]["strikes"] == 0
    assert coordinator.complete(
        slow, unit["unit_id"], [{"garbage": True}]
    )["status"] == "stale"
    assert {w["name"]: w for w in coordinator.workers()}["slow"]["strikes"] == 1

    while drain(coordinator, fast) + drain(coordinator, slow) > 0:
        pass
    thread.join(timeout=10)
    assert "error" not in holder


def test_no_quorum_among_max_votes_fails_the_sweep():
    """Seven pairwise-disagreeing voters exhaust max_votes: sweep fails loudly."""
    coordinator = ClusterCoordinator(quarantine_after=99)
    workers = [
        coordinator.register_worker(f"b{i}")["worker_id"] for i in range(7)
    ]
    # redundancy=3 -> threshold 2, max_votes 2*3+1 = 7.
    holder, thread = submit_async(coordinator, e1_cases()[:1], redundancy=3)
    unit_id = None
    for i, worker_id in enumerate(workers):
        reply = coordinator.lease(worker_id)
        if reply["unit"] is not None:
            unit_id = reply["unit"]["unit_id"]
        assert unit_id is not None
        coordinator.complete(worker_id, unit_id, [{"junk": i}])
    thread.join(timeout=10)
    assert isinstance(holder.get("error"), ClusterError)
    assert "quorum" in str(holder["error"])
    assert coordinator.stats()["units_failed"] == 1


def test_execute_cases_timeout_raises():
    coordinator = ClusterCoordinator()
    with pytest.raises(ClusterError, match="timed out"):
        coordinator.execute_cases(e1_cases(), timeout=0.2)


def test_units_accepted_before_a_timeout_stay_durable(tmp_path):
    """A timed-out sweep still flushes its quorum-accepted units."""
    store = ResultStore(str(tmp_path / "cache"))
    coordinator = ClusterCoordinator(store=store)
    worker_id = coordinator.register_worker("slowpoke")["worker_id"]
    holder, thread = submit_async(
        coordinator, e1_cases()[:2], timeout=0.6
    )
    unit = coordinator.lease(worker_id)["unit"]
    coordinator.complete(worker_id, unit["unit_id"], honest_rows(unit))
    thread.join(timeout=10)  # ... and the second unit never completes.
    assert isinstance(holder.get("error"), ClusterError)
    assert store.quorum_puts == 1
    key = store.key_for(
        unit["cases"][0]["scenario"],
        unit["cases"][0]["params"],
        unit["base_seed"],
        unit["cases"][0]["replication"],
    )
    assert store.get(key) is not None


def test_unknown_ids_raise_key_errors():
    coordinator = ClusterCoordinator()
    with pytest.raises(KeyError, match="unknown worker"):
        coordinator.lease("w999")
    worker_id = coordinator.register_worker()["worker_id"]
    with pytest.raises(KeyError, match="unknown work unit"):
        coordinator.complete(worker_id, "u999", [])


def test_corrupt_rows_is_identity_for_honest_workers():
    rows = [{"metrics": {"a": 1}}, {"metrics": {"b": 2}}]
    assert corrupt_rows(NoFaultAdversary(), 0, rows) == rows


def test_runner_executor_plugin_and_store_short_circuit(tmp_path):
    """run_experiments(executor=coordinator) + store: warm runs skip the fabric."""
    store = ResultStore(str(tmp_path / "cache"))
    coordinator = ClusterCoordinator(store=store)
    stop = threading.Event()
    worker, thread = run_worker_thread(coordinator, name="w", stop=stop)
    try:
        live_progress = []
        cold = run_experiments(
            scenarios=[E1],
            store=store,
            executor=coordinator,
            progress=live_progress.append,
        )
        # Progress fired once per case (live from the fabric, no double
        # reporting from the runner's finish pass).
        assert len(live_progress) == 4
        assert coordinator.stats()["units_completed"] == 4
        # The store was written exactly once per case, via the
        # quorum-verified path — the runner skipped its duplicate put.
        assert store.quorum_puts == 4
        assert store.puts == 4
        warm = run_experiments(scenarios=[E1], store=store, executor=coordinator)
        # Fully cached: the coordinator never saw a second sweep.
        assert coordinator.stats()["units_completed"] == 4
        assert warm.cache_hits == len(warm) == 4
        assert warm.to_json_obj() == cold.to_json_obj()
        assert warm.payload_bytes() == serial_results().payload_bytes()
    finally:
        stop.set()
        thread.join(timeout=5)


def test_worker_thread_with_in_process_transport_matches_serial():
    coordinator = ClusterCoordinator(redundancy=1)
    stop = threading.Event()
    workers = [
        run_worker_thread(coordinator, name=f"w{i}", stop=stop)
        for i in range(3)
    ]
    try:
        results = coordinator.execute_cases(e1_cases(), timeout=30)
        assert [r.payload_dict() for r in results] == [
            r.payload_dict() for r in serial_results()
        ]
    finally:
        stop.set()
        for _worker, thread in workers:
            thread.join(timeout=5)
    assert sum(w.completed for w, _t in workers) == 4


class _ErrorTransport:
    """Transport whose lease always fails with a configurable error."""

    def __init__(self, error):
        self.error = error
        self.registrations = 0

    def register_worker(self, name, worker_id=None):
        """Pretend registration succeeded before the coordinator died."""
        self.registrations += 1
        return {"worker_id": worker_id or "w1", "name": name or "w1"}

    def lease(self, worker_id):
        """Fail every lease with the configured error."""
        raise self.error

    def complete(self, worker_id, unit_id, rows):  # pragma: no cover
        """Unreachable: leases never succeed."""
        raise AssertionError("never reached")


def test_worker_idle_timeout_covers_transient_transport_errors():
    """A worker whose coordinator is unreachable drains off on idle_timeout."""
    from repro.service.client import ServiceError

    transport = _ErrorTransport(ServiceError(0, "cannot reach coordinator"))
    worker = Worker(transport, name="orphan", poll=0.01)
    start = time.monotonic()
    summary = worker.run(idle_timeout=0.15)
    assert time.monotonic() - start < 5.0
    assert summary["completed"] == 0
    assert summary["transport_errors"] >= 2  # kept retrying until idle
    assert "cannot reach" in summary["last_error"]


def test_worker_stops_immediately_on_permanent_server_errors():
    """An HTTP 404 with no coordinator attached stops the loop at once."""
    from repro.service.client import ServiceError

    transport = _ErrorTransport(
        ServiceError(404, "server is running without a cluster coordinator")
    )
    worker = Worker(transport, name="hopeless", poll=0.01)
    summary = worker.run(idle_timeout=None)  # would spin forever if transient
    assert summary["transport_errors"] == 1
    assert "without a cluster coordinator" in summary["last_error"]


def test_worker_reregisters_once_on_unknown_worker_then_stops():
    """"unknown worker" triggers one idempotent re-register, not a spin.

    The transport here keeps answering "unknown worker" even after the
    re-registration succeeds, so the worker must conclude its identity
    cannot be re-established and stop — after exactly one retry.
    """
    from repro.service.client import ServiceError

    for error in (
        KeyError("unknown worker 'w1'; register first"),
        ServiceError(404, "unknown worker 'w1'; register first"),
    ):
        transport = _ErrorTransport(error)
        worker = Worker(transport, name="forgotten", poll=0.01)
        summary = worker.run(idle_timeout=None)
        assert summary["transport_errors"] == 2
        assert "unknown worker" in summary["last_error"]
        assert transport.registrations == 2  # initial + one failover retry
        assert summary["worker_id"] == "w1"  # identity preserved across both


def test_worker_reregistration_recovers_a_restarted_coordinator():
    """A coordinator that lost its registry is rejoined under the same id."""
    coordinator = ClusterCoordinator()
    worker = Worker(coordinator, name="phoenix", poll=0.01)
    worker.register()
    original_id = worker.worker_id
    # Simulate a restart that wiped the worker registry.
    fresh = ClusterCoordinator()
    worker.transport = fresh
    summary = worker.run(idle_timeout=0.05)
    assert summary["last_error"] is None
    assert worker.worker_id == original_id
    assert any(
        w["worker_id"] == original_id for w in fresh.workers()
    )


def test_worker_fails_loudly_on_unknown_scenario():
    coordinator = ClusterCoordinator()
    worker = Worker(coordinator, name="stale-code")
    worker.register()
    unit = {
        "unit_id": "u1",
        "base_seed": 0,
        "cases": [
            {
                "scenario": "_no_such_scenario",
                "family": "x",
                "params": {},
                "seed": 1,
                "replication": 0,
            }
        ],
    }
    with pytest.raises(KeyError, match="_no_such_scenario"):
        worker.run_unit(unit)


def test_worker_summary_and_register_roundtrip():
    coordinator = ClusterCoordinator()
    worker = Worker(coordinator, name="summary")
    assert worker.register().startswith("w")
    summary = worker.run(max_units=0)
    assert summary["worker_id"] == worker.worker_id
    assert summary["completed"] == 0
    assert summary["crashed"] is False
