"""Operational satellites: client retry, store prune/stats, clean shutdown.

Covers the ISSUE-5 satellite behaviours around the service:

* :class:`ServiceClient` retries idempotent GETs on transient connection
  errors with bounded exponential backoff — and never retries POSTs;
* :meth:`ResultStore.prune` bounds the store by age and bytes, and
  ``GET /v1/store/stats`` exposes the counters;
* :meth:`ResultStore.put_quorum` refuses unverified writes;
* stopping a server — ``server_close()`` in-process or SIGTERM against a
  real ``python -m repro.service serve`` subprocess — shuts the
  :class:`JobManager` and its persistent process pool down, so no
  worker processes leak.
"""

import http.client
import os
import pathlib
import signal
import socket
import subprocess
import sys

import pytest

from repro.service import client as client_mod
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager
from repro.service.store import ResultStore

REPO = pathlib.Path(__file__).resolve().parent.parent


# -- client retry/backoff ----------------------------------------------


def _patch_transport(monkeypatch, failures, body=b'{"ok": true}', status=200):
    """``_exchange`` raising each exception in ``failures``, then answering.

    Patches below the retry policy (the per-exchange seam where the
    keep-alive connection lives), so the backoff loop in
    ``_request_raw`` is exercised for real.
    """
    calls = {"n": 0}
    sleeps = []

    def fake_exchange(self, endpoint, method, path, data, headers):
        calls["n"] += 1
        if calls["n"] <= len(failures):
            raise failures[calls["n"] - 1]
        return status, {}, body

    monkeypatch.setattr(client_mod.ServiceClient, "_exchange", fake_exchange)
    monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
    return calls, sleeps


def test_get_retries_transient_errors_with_backoff(monkeypatch):
    calls, sleeps = _patch_transport(
        monkeypatch,
        [ConnectionRefusedError("refused"), ConnectionResetError("reset")],
    )
    client = ServiceClient("http://example", retries=3, backoff=0.05)
    assert client._request("GET", "/v1/health") == {"ok": True}
    assert calls["n"] == 3
    assert sleeps == [0.05, 0.1]  # bounded exponential backoff


def test_get_retry_budget_exhausts_with_status_zero(monkeypatch):
    calls, sleeps = _patch_transport(
        monkeypatch, [ConnectionRefusedError("down")] * 10
    )
    client = ServiceClient("http://example", retries=2, backoff=0.01)
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/health")
    assert excinfo.value.status == 0
    assert "3 attempt(s)" in excinfo.value.message
    assert calls["n"] == 3
    assert len(sleeps) == 2


def test_post_is_never_retried(monkeypatch):
    calls, sleeps = _patch_transport(
        monkeypatch, [ConnectionRefusedError("refused")] * 10
    )
    client = ServiceClient("http://example", retries=5)
    with pytest.raises(ServiceError):
        client._request("POST", "/v1/sweeps", {"smoke": True})
    assert calls["n"] == 1  # a submit that landed must not be replayed
    assert sleeps == []


def test_http_errors_are_not_retried(monkeypatch):
    calls, _sleeps = _patch_transport(
        monkeypatch, [], body=b'{"error": "no route"}', status=404
    )
    client = ServiceClient("http://example", retries=3)
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/x")
    assert excinfo.value.status == 404
    assert calls["n"] == 1


def test_backoff_is_capped(monkeypatch):
    calls, sleeps = _patch_transport(
        monkeypatch, [ConnectionRefusedError("down")] * 4
    )
    client = ServiceClient(
        "http://example", retries=4, backoff=0.5, max_backoff=1.0
    )
    assert client._request("GET", "/v1/health") == {"ok": True}
    assert sleeps == [0.5, 1.0, 1.0, 1.0]
    assert calls["n"] == 5


def test_stale_keep_alive_connection_is_replayed_once(monkeypatch):
    """A reused connection the server closed idle is replaced silently.

    The replay happens below the GET-only retry policy: it applies to
    any method, because ``RemoteDisconnected`` on a reused connection
    means the server never received the request.
    """
    attempts = []

    class _FakeConn:
        """Connection double: first one is stale, successor answers."""

        def __init__(self, stale):
            self.stale = stale

        def request(self, method, path, body=None, headers=None):
            attempts.append((method, path, self.stale))
            if self.stale:
                raise http.client.RemoteDisconnected("server closed idle")

        def getresponse(self):
            class _R:
                status = 200
                headers = {}
                will_close = False

                @staticmethod
                def read():
                    return b'{"ok": true}'

            return _R()

        def close(self):
            pass

    client = ServiceClient("http://example", retries=0)
    client._local.conn = _FakeConn(stale=True)  # a previously-used conn
    client._local.endpoint = "http://example"
    monkeypatch.setattr(
        client_mod.ServiceClient,
        "_connect",
        lambda self, endpoint: setattr(
            self._local, "conn", _FakeConn(stale=False)
        )
        or self._local.conn,
    )
    assert client._request("POST", "/v1/sweeps", {"smoke": True}) == {
        "ok": True
    }
    assert [stale for (_m, _p, stale) in attempts] == [True, False]


def test_fresh_connection_failures_are_not_replayed(monkeypatch):
    """The stale-connection replay never fires on a first-use connection."""
    calls, sleeps = _patch_transport(
        monkeypatch, [http.client.RemoteDisconnected("boom")] * 10
    )
    client = ServiceClient("http://example", retries=0)
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/sweeps", {"smoke": True})
    assert excinfo.value.status == 0
    assert calls["n"] == 1 and sleeps == []


# -- store prune / stats / quorum writes --------------------------------


def _fill(store, n, size=0):
    """Put ``n`` blobs (optionally padded) and return their keys."""
    keys = []
    for i in range(n):
        key = store.key_for("scn", {"i": i, "pad": "x" * size}, 0)
        store.put(key, {"metrics": {"i": i}, "pad": "x" * size})
        keys.append(key)
    return keys


def test_prune_by_age(tmp_path):
    store = ResultStore(str(tmp_path))
    keys = _fill(store, 4)
    old = keys[:2]
    for key in old:
        os.utime(store.path_for(key), (1, 1))  # ancient mtime
    report = store.prune(max_age_s=3600)
    assert report["removed"] == 2
    assert report["disk_entries"] == 2
    assert store.get(old[0]) is None  # purged from LRU and disk
    assert store.get(keys[3]) is not None
    stats = store.stats()
    assert stats["disk_entries"] == 2
    assert stats["pruned"] == 2


def test_prune_by_bytes_evicts_oldest_first(tmp_path):
    store = ResultStore(str(tmp_path))
    keys = _fill(store, 4, size=100)
    sizes = [os.path.getsize(store.path_for(k)) for k in keys]
    for i, key in enumerate(keys):
        os.utime(store.path_for(key), (1000 + i, 1000 + i))
    budget = sizes[2] + sizes[3]
    report = store.prune(max_bytes=budget)
    assert report["removed"] == 2
    assert report["disk_bytes"] <= budget
    assert store.get(keys[0]) is None and store.get(keys[1]) is None
    assert store.get(keys[2]) is not None and store.get(keys[3]) is not None


def test_stats_disk_bytes_tracks_puts(tmp_path):
    store = ResultStore(str(tmp_path))
    assert store.stats()["disk_bytes"] == 0
    key = _fill(store, 1)[0]
    expected = os.path.getsize(store.path_for(key))
    assert store.stats()["disk_bytes"] == expected
    # Overwriting the same key must not double-count.
    store.put(key, {"metrics": {"i": 0}, "pad": ""})
    assert store.stats()["disk_bytes"] == os.path.getsize(store.path_for(key))


def test_put_quorum_refuses_unverified_writes(tmp_path):
    store = ResultStore(str(tmp_path))
    key = store.key_for("scn", {}, 0)
    with pytest.raises(ValueError, match="unverified"):
        store.put_quorum(key, {"m": 1}, votes=1, threshold=2)
    assert store.get(key) is None
    store.put_quorum(key, {"m": 1}, votes=2, threshold=2)
    assert store.get(key) == {"m": 1}
    assert store.stats()["quorum_puts"] == 1


def test_store_stats_endpoint(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        client.run_sweep(scenarios=["coordination_robustness"])
        stats = client.store_stats()
        assert stats["disk_entries"] == 4
        assert stats["disk_bytes"] > 0
        assert stats["puts"] == 4
    finally:
        server.shutdown()
        server.server_close()


def test_store_stats_endpoint_404_without_store():
    server, _thread = start_async_server()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        with pytest.raises(ServiceError, match="without a result store"):
            client.store_stats()
    finally:
        server.shutdown()
        server.server_close()


# -- clean shutdown ----------------------------------------------------


def test_server_close_shuts_the_manager_pool_down():
    manager = JobManager(max_workers=2)
    server, _thread = start_async_server(manager=manager)
    try:
        pool = manager._pool_for(4)
        assert pool is not None
        assert manager.stats()["pool_started"] is True
    finally:
        server.server_close()
    assert manager.stats()["pool_started"] is False
    # ... and the pool cannot be lazily restarted after close.
    assert manager._pool_for(4) is None


def _free_port() -> int:
    """An OS-assigned free TCP port (racy but fine for a test)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_sigterm_stops_a_served_process_cleanly():
    """Regression: serve + pooled sweep + SIGTERM exits 0, no leaked pool.

    Before the managed shutdown, the persistent ``ProcessPoolExecutor``
    survived SIGTERM-as-KeyboardInterrupt and its non-daemon threads
    kept the interpreter (and its child processes) alive — this test
    would hang at ``wait`` instead of exiting 0.
    """
    port = _free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            str(port),
            "--workers",
            "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}")
        client.wait_until_up(timeout=30)
        # Force the persistent process pool into existence.
        client.run_sweep(scenarios=["coordination_robustness"], timeout=60)
        assert client.health()["manager"]["pool_started"] is True
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
