"""Tests for Byzantine agreement (E4): protocols and impossibility."""

import pytest

from repro.dist.agreement import (
    check_agreement,
    run_eig_agreement,
    run_mediator_agreement,
    run_phase_king_agreement,
    search_for_disagreement,
    two_faced_script,
)
from repro.dist.simulator import (
    ByzantineRandomAdversary,
    CrashAdversary,
    NoFaultAdversary,
    ScriptedAdversary,
)


class TestSpecChecker:
    def test_agreement_and_validity(self):
        out = check_agreement({1: 1, 2: 1}, general_value=1, general_faulty=False)
        assert out.correct

    def test_disagreement_detected(self):
        out = check_agreement({1: 0, 2: 1}, general_value=1, general_faulty=False)
        assert not out.agreement

    def test_validity_vacuous_when_general_faulty(self):
        out = check_agreement({1: 0, 2: 0}, general_value=1, general_faulty=True)
        assert out.validity and out.agreement


class TestEIG:
    @pytest.mark.parametrize("general_value", [0, 1])
    def test_no_faults(self, general_value):
        out = run_eig_agreement(4, 1, general_value)
        assert out.correct
        assert set(out.outputs.values()) == {general_value}

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("general_value", [0, 1])
    def test_random_byzantine_nongeneral(self, seed, general_value):
        adv = ByzantineRandomAdversary({3}, seed=seed)
        assert run_eig_agreement(4, 1, general_value, adv).correct

    @pytest.mark.parametrize("seed", range(5))
    def test_random_byzantine_general(self, seed):
        adv = ByzantineRandomAdversary({0}, seed=seed)
        out = run_eig_agreement(4, 1, 1, adv)
        # General faulty: only agreement is required.
        assert out.agreement

    def test_two_faced_nongeneral(self):
        for flip_for in ({0}, {1}, {0, 1}):
            adv = ScriptedAdversary({3}, two_faced_script(flip_for))
            assert run_eig_agreement(4, 1, 1, adv).correct

    def test_two_faced_general(self):
        adv = ScriptedAdversary({0}, two_faced_script({1}))
        out = run_eig_agreement(4, 1, 1, adv)
        assert out.agreement

    def test_crash_fault(self):
        adv = CrashAdversary({2}, crash_round={2: 1})
        assert run_eig_agreement(4, 1, 1, adv).correct

    def test_t2_needs_seven(self):
        adv = ByzantineRandomAdversary({5, 6}, seed=3)
        assert run_eig_agreement(7, 2, 1, adv).correct

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_eig_agreement(1, 0, 1)
        with pytest.raises(ValueError):
            run_eig_agreement(4, 4, 1)


class TestPhaseKing:
    @pytest.mark.parametrize("general_value", [0, 1])
    def test_no_faults(self, general_value):
        out = run_phase_king_agreement(5, 1, general_value)
        assert out.correct

    @pytest.mark.parametrize("seed", range(8))
    def test_random_byzantine(self, seed):
        adv = ByzantineRandomAdversary({4}, seed=seed)
        assert run_phase_king_agreement(5, 1, 1, adv).correct

    def test_two_faced(self):
        adv = ScriptedAdversary({4}, two_faced_script({1, 2}))
        assert run_phase_king_agreement(5, 1, 0, adv).correct


class TestMediator:
    def test_trivial_correctness(self):
        out = run_mediator_agreement(4, 1)
        assert out.correct

    def test_tolerates_any_number_of_faulty_players(self):
        # Even n-1 faulty players cannot disturb honest listeners.
        adv = ByzantineRandomAdversary({1, 2, 3}, seed=0)
        out = run_mediator_agreement(4, 1, adv)
        assert out.outputs == {0: 1}
        assert out.correct

    def test_mediator_cannot_be_corrupted(self):
        with pytest.raises(ValueError):
            run_mediator_agreement(3, 1, ByzantineRandomAdversary({3}))

    def test_faulty_general_still_agreement(self):
        adv = ByzantineRandomAdversary({0}, seed=1)
        out = run_mediator_agreement(4, 1, adv)
        assert out.agreement  # everyone follows the mediator


class TestImpossibility:
    def test_n3_t1_breaks(self):
        violation = search_for_disagreement(3, 1, "eig", random_seeds=10)
        assert violation is not None
        assert not violation.correct

    def test_n4_t1_survives_search(self):
        violation = search_for_disagreement(4, 1, "eig", random_seeds=10)
        assert violation is None

    def test_n6_t2_breaks(self):
        violation = search_for_disagreement(
            6, 2, "eig", general_values=(1,), random_seeds=2
        )
        assert violation is not None

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            search_for_disagreement(3, 1, "paxos")
