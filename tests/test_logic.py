"""Tests for the Fagin–Halpern logic of general awareness."""

import pytest

from repro.logic import (
    And,
    Aware,
    AwarenessStructure,
    ExplicitlyKnows,
    Implies,
    Knows,
    Not,
    Or,
    Prop,
    generated_awareness_set,
    primitive_propositions,
    subformulas,
)

P = Prop("p")
Q = Prop("q")


def two_state_model(awareness=None):
    """Agent 0 cannot distinguish s and t; p true only at s; q true at both."""
    return AwarenessStructure(
        states=["s", "t"],
        n_agents=2,
        valuation={"s": {"p", "q"}, "t": {"q"}},
        accessibility={
            0: {"s": {"s", "t"}, "t": {"s", "t"}},
            1: {"s": {"s"}, "t": {"t"}},
        },
        awareness=awareness,
    )


class TestFormulas:
    def test_operators_build_trees(self):
        formula = (P & Q) | ~P
        assert isinstance(formula, Or)
        assert isinstance(formula.right, Not)

    def test_primitive_propositions(self):
        formula = Knows(0, Implies(P, And(Q, Not(P))))
        assert primitive_propositions(formula) == {"p", "q"}

    def test_subformulas(self):
        formula = And(P, Knows(1, Q))
        parts = list(subformulas(formula))
        assert P in parts and Q in parts and formula in parts

    def test_formulas_hashable(self):
        assert len({P, Prop("p"), Q}) == 2


class TestModelChecking:
    def test_propositional_connectives(self):
        m = two_state_model()
        assert m.satisfies("s", P)
        assert not m.satisfies("t", P)
        assert m.satisfies("t", Not(P))
        assert m.satisfies("s", And(P, Q))
        assert m.satisfies("t", Or(P, Q))
        assert m.satisfies("t", Implies(P, Q))

    def test_implicit_knowledge(self):
        m = two_state_model()
        # Agent 0 cannot distinguish s from t, so does not know p...
        assert not m.satisfies("s", Knows(0, P))
        # ...but knows q (true at both accessible states).
        assert m.satisfies("s", Knows(0, Q))
        # Agent 1 has perfect information.
        assert m.satisfies("s", Knows(1, P))
        assert m.satisfies("t", Knows(1, Not(P)))

    def test_vacuous_knowledge_with_empty_accessibility(self):
        m = AwarenessStructure(
            states=["s"],
            n_agents=1,
            valuation={"s": set()},
            accessibility={0: {"s": set()}},
        )
        assert m.satisfies("s", Knows(0, P))  # vacuously

    def test_unknown_state_rejected(self):
        m = two_state_model()
        with pytest.raises(KeyError):
            m.satisfies("zzz", P)

    def test_accessibility_validation(self):
        with pytest.raises(ValueError):
            AwarenessStructure(
                states=["s"],
                n_agents=1,
                valuation={"s": set()},
                accessibility={0: {"s": {"elsewhere"}}},
            )


class TestAwareness:
    def test_default_full_awareness(self):
        m = two_state_model()
        assert m.satisfies("s", Aware(0, Knows(1, And(P, Q))))

    def test_generated_awareness(self):
        awareness = {
            (0, "s"): generated_awareness_set({"q"}),
            (0, "t"): generated_awareness_set({"q"}),
        }
        m = two_state_model(awareness)
        assert m.satisfies("s", Aware(0, Q))
        assert not m.satisfies("s", Aware(0, P))
        assert not m.satisfies("s", Aware(0, And(P, Q)))  # mentions p

    def test_explicit_knowledge_needs_both(self):
        awareness = {
            (1, "s"): generated_awareness_set({"q"}),
            (1, "t"): generated_awareness_set({"q"}),
        }
        m = two_state_model(awareness)
        # Agent 1 implicitly knows p at s, but is unaware of p.
        assert m.satisfies("s", Knows(1, P))
        assert not m.satisfies("s", ExplicitlyKnows(1, P))
        # Explicit knowledge of q is fine.
        assert m.satisfies("s", ExplicitlyKnows(1, Q))

    def test_awareness_axioms_under_generation(self):
        """With generated awareness: A(φ∧ψ) ⟺ A(φ) ∧ A(ψ), A(¬φ) ⟺ A(φ)."""
        awareness = {
            (0, "s"): generated_awareness_set({"p"}),
            (0, "t"): generated_awareness_set({"p"}),
        }
        m = two_state_model(awareness)
        for phi, psi in [(P, P), (P, Q), (Q, Q)]:
            lhs = m.satisfies("s", Aware(0, And(phi, psi)))
            rhs = m.satisfies("s", And(Aware(0, phi), Aware(0, psi)))
            assert lhs == rhs
        assert m.satisfies("s", Aware(0, Not(P))) == m.satisfies(
            "s", Aware(0, P)
        )

    def test_explicit_implies_awareness_valid(self):
        awareness = {
            (0, "s"): generated_awareness_set({"p"}),
            (0, "t"): generated_awareness_set({"p"}),
        }
        m = two_state_model(awareness)
        assert m.valid(Implies(ExplicitlyKnows(0, P), Aware(0, P)))


class TestFrameProperties:
    def test_partitional_detection(self):
        m = two_state_model()
        assert m.is_partitional(0)
        assert m.is_partitional(1)

    def test_non_symmetric_relation(self):
        m = AwarenessStructure(
            states=["s", "t"],
            n_agents=1,
            valuation={"s": set(), "t": set()},
            accessibility={0: {"s": {"t"}, "t": {"t"}}},
        )
        assert not m.is_reflexive(0)
        assert not m.is_symmetric(0)
        assert m.is_transitive(0)
        assert not m.is_partitional(0)


class TestFigure1AsLogic:
    """The Figure 1 story in the logic: A unaware that B can move down."""

    def build(self):
        b_can_down = Prop("b_can_down")
        # One real state where down_B exists; A's awareness omits it.
        m = AwarenessStructure(
            states=["w"],
            n_agents=2,  # 0 = A, 1 = B
            valuation={"w": {"b_can_down"}},
            accessibility={0: {"w": {"w"}}, 1: {"w": {"w"}}},
            awareness={
                (0, "w"): generated_awareness_set(set()),
                (1, "w"): generated_awareness_set({"b_can_down"}),
            },
        )
        return m, b_can_down

    def test_a_implicitly_but_not_explicitly_knows(self):
        m, b_can_down = self.build()
        # The fact is true and A's (trivial) partition supports it...
        assert m.satisfies("w", Knows(0, b_can_down))
        # ...but A cannot even formulate it: no explicit knowledge.
        assert not m.satisfies("w", Aware(0, b_can_down))
        assert not m.satisfies("w", ExplicitlyKnows(0, b_can_down))

    def test_b_explicitly_knows(self):
        m, b_can_down = self.build()
        assert m.satisfies("w", ExplicitlyKnows(1, b_can_down))

    def test_b_knows_a_does_not_explicitly_know(self):
        m, b_can_down = self.build()
        assert m.satisfies(
            "w", Knows(1, Not(ExplicitlyKnows(0, b_can_down)))
        )
