"""Asyncio-server-specific behaviour: the read-scale and drain features.

The cross-server parity matrix lives in ``test_service_http.py`` /
``test_cluster_http.py`` (parametrized fixtures).  This module covers
what only the async core promises: conditional GETs (ETag/304 — a
content address *is* its ETag), the NDJSON ``/v1/results:batch``
endpoint, raw-socket request pipelining, HEAD/GET header agreement,
zero-copy large-blob responses, the keep-alive connection bound, idle
sweeping plus the client's transparent reconnect, and graceful drain
with requests in flight.
"""

import http.client
import json
import socket
import threading

import pytest

from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore


@pytest.fixture
def aservice(tmp_path):
    """A live asyncio server + client + store triple."""
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    try:
        yield client, store, server
    finally:
        server.shutdown()
        server.server_close()


def _seed(client, store):
    """Run one small sweep and return a warm content-address key."""
    client.run_sweep(scenarios=["coordination_robustness"])
    return store.key_for("coordination_robustness", {"n": 3}, 0, 0)


def _raw_conn(server):
    """A raw ``http.client`` connection to the server."""
    host, port = server.server_address[:2]
    return http.client.HTTPConnection(host, port, timeout=10)


# -- ETag / If-None-Match ----------------------------------------------


def test_etag_and_304_on_results(aservice):
    client, store, server = aservice
    key = _seed(client, store)
    conn = _raw_conn(server)
    try:
        conn.request("GET", f"/v1/results/{key}")
        resp = conn.getresponse()
        body = resp.read()
        assert resp.status == 200
        assert resp.getheader("ETag") == f'"{key}"'
        assert len(body) == int(resp.getheader("Content-Length"))

        # The content address is the ETag: revalidation costs 0 bytes.
        for header in (f'"{key}"', "*", f'W/"{key}"', f'"nope", "{key}"'):
            conn.request(
                "GET", f"/v1/results/{key}", headers={"If-None-Match": header}
            )
            resp = conn.getresponse()
            assert resp.read() == b""
            assert resp.status == 304, header
            assert resp.getheader("ETag") == f'"{key}"'

        # A non-matching validator gets the full body again.
        conn.request(
            "GET", f"/v1/results/{key}", headers={"If-None-Match": '"stale"'}
        )
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.read() == body
    finally:
        conn.close()


def test_client_etag_cache_serves_304s_locally(aservice):
    client, store, _server = aservice
    key = _seed(client, store)
    first = client.fetch_bytes(key)
    assert client.etag_hits == 0
    again = client.fetch_bytes(key)
    assert again == first
    assert client.etag_hits == 1  # second fetch was a 304, zero body bytes
    with open(store.path_for(key), "rb") as handle:
        assert first == handle.read()


# -- batch endpoint -----------------------------------------------------


def test_results_batch_round_trip(aservice):
    client, store, server = aservice
    _seed(client, store)
    keys = sorted(store.keys())
    assert len(keys) == 4
    missing = "ab" * 32
    fetched = client.fetch_batch(keys + [missing])
    assert fetched[missing] is None
    for key in keys:
        assert fetched[key] == json.loads(client.fetch_bytes(key))

    # Raw shape: NDJSON, one line per requested key, in request order.
    conn = _raw_conn(server)
    try:
        conn.request(
            "POST",
            "/v1/results:batch",
            body=json.dumps({"keys": keys + [missing]}),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "application/x-ndjson"
        lines = resp.read().decode("utf-8").splitlines()
        assert [json.loads(line)["key"] for line in lines] == keys + [missing]
        assert json.loads(lines[-1]) == {"key": missing, "found": False}
    finally:
        conn.close()


def test_results_batch_validates_requests(aservice):
    client, _store, _server = aservice
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/results:batch", {"keys": "notalist"})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/results:batch", {})
    assert excinfo.value.status == 400


# -- pipelining ---------------------------------------------------------


def test_pipelined_requests_answer_in_order(aservice):
    client, store, server = aservice
    key = _seed(client, store)
    host, port = server.server_address[:2]
    n = 16
    request = (
        f"GET /v1/results/{key} HTTP/1.1\r\nHost: t\r\n\r\n".encode("ascii")
    )
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request * n)  # one burst, no waiting between requests
        reader = sock.makefile("rb")
        bodies = []
        for _ in range(n):
            status_line = reader.readline()
            assert status_line == b"HTTP/1.1 200 OK\r\n"
            length = 0
            while True:
                line = reader.readline()
                if line in (b"\r\n", b""):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            bodies.append(reader.read(length))
    assert len(set(bodies)) == 1  # same key → byte-identical responses
    with open(store.path_for(key), "rb") as handle:
        assert bodies[0] == handle.read()


def test_pipelined_mix_of_gets_and_posts_keeps_order(aservice):
    """POSTs detour through the executor; response order must not."""
    _client, _store, server = aservice
    host, port = server.server_address[:2]
    get = b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n"
    solve_body = json.dumps(
        {"classic": "prisoners_dilemma", "method": "pure"}
    ).encode("ascii")
    post = (
        b"POST /v1/solve HTTP/1.1\r\nHost: t\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: %d\r\n\r\n%s" % (len(solve_body), solve_body)
    )
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(get + post + get)
        reader = sock.makefile("rb")
        kinds = []
        for _ in range(3):
            assert reader.readline() == b"HTTP/1.1 200 OK\r\n"
            length = 0
            while True:
                line = reader.readline()
                if line in (b"\r\n", b""):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            payload = json.loads(reader.read(length))
            kinds.append("solve" if "equilibria" in payload else "health")
    assert kinds == ["health", "solve", "health"]


# -- HEAD ---------------------------------------------------------------


def test_head_agrees_with_get(aservice):
    client, store, server = aservice
    key = _seed(client, store)
    conn = _raw_conn(server)
    try:
        for path in ("/v1/health", f"/v1/results/{key}"):
            conn.request("GET", path)
            get_resp = conn.getresponse()
            get_body = get_resp.read()
            conn.request("HEAD", path)
            head_resp = conn.getresponse()
            head_body = head_resp.read()
            assert head_resp.status == get_resp.status == 200
            assert head_body == b""
            assert int(head_resp.getheader("Content-Length")) == len(get_body)
    finally:
        conn.close()


# -- zero-copy blobs ----------------------------------------------------


def test_large_blob_served_verbatim_via_sendfile_path(aservice):
    """Blobs over the sendfile threshold stream from disk, byte-exact."""
    client, store, _server = aservice
    pad = "x" * 200_000  # well past _SENDFILE_MIN_BYTES (64 KiB)
    key = store.key_for("big", {"pad_id": 1}, 0)
    store.put(key, {"metrics": {"ok": 1}, "pad": pad})
    over_http = client.fetch_bytes(key)
    with open(store.path_for(key), "rb") as handle:
        disk = handle.read()
    assert len(disk) > 200_000
    assert over_http == disk
    # And the conditional fetch still works at this size.
    assert client.fetch_bytes(key) == disk
    assert client.etag_hits == 1


# -- connection management ---------------------------------------------


def test_connection_bound_refuses_excess_with_503(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store, max_connections=2)
    conns = []
    try:
        for _ in range(2):
            conn = _raw_conn(server)
            conn.request("GET", "/v1/health")
            assert conn.getresponse().read() != b""
            conns.append(conn)
        extra = _raw_conn(server)
        conns.append(extra)
        extra.request("GET", "/v1/health")
        resp = extra.getresponse()
        assert resp.status == 503
        assert b"connection limit" in resp.read()
    finally:
        for conn in conns:
            conn.close()
        server.shutdown()
        server.server_close()


def test_idle_sweeper_closes_and_client_reconnects(tmp_path):
    """Server-side idle close is invisible to the keep-alive client."""
    import time

    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(
        store=store, keep_alive_timeout=0.5
    )
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    try:
        assert client.health()["status"] == "ok"
        deadline = time.monotonic() + 10
        while server._server.connections and time.monotonic() < deadline:
            time.sleep(0.1)  # sweeper fires on a ~1s cadence
        assert not server._server.connections  # idle conn was closed
        # The client's cached connection is now stale; the next call
        # must silently reconnect rather than surface an error.
        assert client.health()["status"] == "ok"
    finally:
        server.shutdown()
        server.server_close()


# -- graceful drain -----------------------------------------------------


def test_drain_finishes_in_flight_requests(tmp_path):
    """Shutdown waits for in-flight handlers and still answers them."""
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store, drain_timeout=20.0)
    core = server._server
    started = threading.Event()
    gate = threading.Event()
    real_handle = core.api.handle

    def gated_handle(method, path, body=b"", if_none_match=None):
        """Block POSTs until the test opens the gate."""
        if method == "POST":
            started.set()
            assert gate.wait(15)
        return real_handle(method, path, body, if_none_match)

    core.api.handle = gated_handle
    host, port = server.server_address[:2]
    reply = {}

    def slow_post():
        """The in-flight request riding through the drain."""
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/solve",
                body=json.dumps(
                    {"classic": "prisoners_dilemma", "method": "pure"}
                ),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            reply["status"] = resp.status
            reply["body"] = json.loads(resp.read())
        finally:
            conn.close()

    poster = threading.Thread(target=slow_post)
    poster.start()
    assert started.wait(15)  # request is in flight inside the handler

    shutdown = threading.Thread(target=server.shutdown)
    shutdown.start()
    shutdown.join(timeout=0.5)
    assert shutdown.is_alive()  # drain is waiting on the in-flight POST

    gate.set()
    shutdown.join(timeout=20)
    poster.join(timeout=20)
    assert not shutdown.is_alive()
    assert reply["status"] == 200  # the response made it out before close
    assert reply["body"]["equilibria"] == [[1, 1]]
    server.server_close()

    # Post-drain, the port no longer accepts new work.
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=2).close()
