"""Tests for the ADGH feasibility decision procedure (E3)."""

import pytest

from repro.core.feasibility import (
    Regime,
    Resources,
    classify_regime,
    feasibility_table,
    mediator_implementability,
)

ALL = Resources(
    utilities_known=True,
    punishment_strategy=True,
    broadcast=True,
    cryptography=True,
    polynomially_bounded=True,
    pki=True,
)
NOTHING = Resources()


class TestRegimeClassification:
    def test_boundaries_k1_t1(self):
        # k=1, t=1: thresholds at 6 (3k+3t), 5 (2k+3t), 4 (2k+2t) = (k+3t),
        # 2 (k+t).
        assert classify_regime(7, 1, 1) is Regime.ABOVE_3K_3T
        assert classify_regime(6, 1, 1) is Regime.ABOVE_2K_3T
        assert classify_regime(5, 1, 1) is Regime.ABOVE_2K_2T
        assert classify_regime(4, 1, 1) is Regime.ABOVE_K_T
        assert classify_regime(2, 1, 1) is Regime.AT_OR_BELOW_K_T

    def test_k_3t_band_appears_when_k_exceeds_t(self):
        # The k+3t < n <= 2k+2t band is nonempty iff t < k.
        # k=3, t=1: k+3t = 6 < n = 7 <= 2k+2t = 8.
        assert classify_regime(7, 3, 1) is Regime.ABOVE_K_3T

    def test_nash_special_case(self):
        # (k,t) = (1,0): Nash equilibrium; n > 3 means cheap talk works
        # with no extra assumptions.
        assert classify_regime(4, 1, 0) is Regime.ABOVE_3K_3T

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_regime(0, 1, 1)
        with pytest.raises(ValueError):
            classify_regime(5, 0, 1)
        with pytest.raises(ValueError):
            classify_regime(5, 1, -1)


class TestVerdicts:
    def test_bullet1_unconditional(self):
        v = mediator_implementability(7, 1, 1, NOTHING)
        assert v.implementable and not v.epsilon_only
        assert v.requirements == ()
        assert "Bullet 1" in v.provenance

    def test_bullet3_needs_punishment_and_utilities(self):
        denied = mediator_implementability(6, 1, 1, NOTHING)
        assert not denied.implementable
        granted = mediator_implementability(
            6, 1, 1, Resources(utilities_known=True, punishment_strategy=True)
        )
        assert granted.implementable and not granted.epsilon_only
        assert "Bullet 3" in granted.provenance

    def test_bullet3_partial_resources_fail(self):
        only_punish = mediator_implementability(
            6, 1, 1, Resources(punishment_strategy=True)
        )
        assert not only_punish.implementable
        assert "known utilities" in only_punish.requirements

    def test_bullet5_broadcast_epsilon(self):
        v = mediator_implementability(5, 1, 1, Resources(broadcast=True))
        assert v.implementable and v.epsilon_only
        assert "Bullet 5" in v.provenance

    def test_bullet5_without_broadcast_fails(self):
        v = mediator_implementability(5, 1, 1, NOTHING)
        assert not v.implementable

    def test_bullet7_crypto_in_broadcast_band_without_broadcast(self):
        # k=2, t=1: 2k+2t = 6 < n = 7 <= 2k+3t = 7, and n > k+3t = 5, so
        # crypto + bounded players rescue the no-broadcast case with
        # runtime independent of utilities (n > 2k+2t).
        v = mediator_implementability(
            7, 2, 1,
            Resources(cryptography=True, polynomially_bounded=True),
        )
        assert v.implementable and v.epsilon_only
        assert "Bullet 7" in v.provenance
        assert "independent of utilities" in v.runtime

    def test_bullet7_runtime_depends_on_utilities_when_small(self):
        # k=3, t=1: k+3t = 6 < n = 7 <= 2k+2t = 8: crypto band with
        # utility-dependent running time.
        v = mediator_implementability(
            7, 3, 1,
            Resources(cryptography=True, polynomially_bounded=True),
        )
        assert v.implementable
        assert "depends on utilities" in v.runtime

    def test_bullet9_pki(self):
        v = mediator_implementability(4, 1, 1, ALL)
        assert v.implementable and v.epsilon_only
        assert "Bullet 9" in v.provenance

    def test_bullet9_without_pki_fails(self):
        v = mediator_implementability(
            4, 1, 1,
            Resources(cryptography=True, polynomially_bounded=True),
        )
        assert not v.implementable
        assert "PKI" in "".join(v.requirements)

    def test_below_k_t_impossible_even_with_everything(self):
        v = mediator_implementability(2, 1, 1, ALL)
        assert not v.implementable

    def test_crypto_without_bounded_players_fails(self):
        v = mediator_implementability(
            7, 1, 2, Resources(cryptography=True)
        )
        assert not v.implementable

    def test_summary_renders(self):
        v = mediator_implementability(7, 1, 1)
        text = v.summary()
        assert "n=7" in text and "implementable" in text


class TestTable:
    def test_sweep_monotone_in_n(self):
        # With all resources, implementability is monotone in n.
        verdicts = feasibility_table(range(2, 12), 1, 1, ALL)
        implementable = [v.implementable for v in verdicts]
        first_true = implementable.index(True)
        assert all(implementable[first_true:])

    def test_sweep_without_resources_threshold_at_3k3t(self):
        verdicts = feasibility_table(range(2, 12), 1, 1, NOTHING)
        for v in verdicts:
            assert v.implementable == (v.n > 6)

    def test_epsilon_flag_only_in_weak_regimes(self):
        verdicts = feasibility_table(range(2, 15), 1, 1, ALL)
        for v in verdicts:
            if v.n > 6:
                assert not v.epsilon_only
            elif v.implementable:
                assert v.epsilon_only or v.n > 5  # bullet 3 band is exact
