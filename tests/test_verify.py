"""Tests for repro.verify: the bounded model checker and its traces.

Covers parity with ``search_for_disagreement`` (the checker rediscovers
the classic ``n <= 3t`` impossibility as a *minimal* counterexample),
exhaustive certification in the possible regime, replay determinism
(property-based), trace serialization/shrinking, the hash-consing
substrate, and the simulator's fork/step hooks.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.agreement import (
    EIGNode,
    run_eig_agreement,
    search_for_disagreement,
)
from repro.dist.faults import CrashAdversary, ScriptedAdversary
from repro.dist.simulator import Message, Network, NoFaultAdversary
from repro.verify import (
    CorruptionAction,
    CorruptionAlphabet,
    CounterexampleTrace,
    DigestStore,
    check_model,
)
from repro.verify.__main__ import main as verify_main
from repro.verify.explorer import coalition_family, model_horizon
from repro.verify.invariants import (
    BYZANTINE_AGREEMENT,
    InvariantContext,
    first_violation,
    get_invariant,
)
from repro.verify.states import (
    CRASH,
    FLIP,
    SILENCE,
    canonical_bytes,
    flip_payload,
    network_digest,
)
from repro.verify.traces import CorruptionEvent, shrink_trace


# ----------------------------------------------------------------------
# Parity with search_for_disagreement, and certification
# ----------------------------------------------------------------------


class TestCheckerVerdicts:
    def test_rediscovers_n3_t1_disagreement(self):
        """The checker finds the (3,1) violation search_for_disagreement
        exhibits — but as a shrunk, replayable minimal trace."""
        searched = search_for_disagreement(3, 1, "eig", random_seeds=0)
        assert searched is not None  # the classic impossibility
        result = check_model("eig", 3, 1, bound=2)
        assert not result.ok
        trace = result.counterexample
        assert trace is not None
        assert trace.invariant in {inv.name for inv in BYZANTINE_AGREEMENT}
        # Minimal: (3,1) falls to a single corruption event.
        assert len(trace.events) == 1
        assert trace.replay_violates()

    def test_certifies_eig_n4_t1_all_coalitions(self):
        """n > 3t: EIG at (4,1) survives every coalition exhaustively."""
        result = check_model("eig", 4, 1, bound=3, coalitions="all")
        assert result.ok
        assert result.counterexample is None
        assert not result.truncated
        assert result.states_explored > 100
        assert result.terminal_states > 0

    def test_certifies_phase_king_n4_t1_family(self):
        """Phase king at (4,1) survives the search_for_disagreement
        placement family (last-t and general-led coalitions)."""
        result = check_model("phase_king", 4, 1, bound=3)
        assert result.ok
        assert not result.truncated

    def test_phase_king_n4_t1_breaks_under_all_coalitions(self):
        """The discovery: at n = 4t a faulty *final-phase king* breaks
        agreement — a genuine attack the hand-picked family misses."""
        result = check_model("phase_king", 4, 1, bound=2, coalitions="all")
        assert not result.ok
        trace = result.counterexample
        assert trace is not None
        assert trace.faulty == (1,)  # the phase-2 king
        assert trace.invariant == "agreement"
        assert len(trace.events) == 2
        assert trace.replay_violates()

    def test_bound_zero_is_honest_run(self):
        """With no corruption budget the only execution is the honest one."""
        result = check_model("eig", 3, 1, bound=0)
        assert result.ok
        assert result.terminal_states == len(result.configs)

    def test_counterexample_replay_matches_recorded_outputs(self):
        result = check_model("eig", 3, 1, bound=2)
        trace = result.counterexample
        outcome = trace.replay()
        assert dict(outcome.outputs) == dict(trace.honest_outputs)

    def test_stop_on_violation_false_keeps_exploring(self):
        cut = check_model("eig", 3, 1, bound=1)
        full = check_model("eig", 3, 1, bound=1, stop_on_violation=False)
        assert not cut.ok and not full.ok
        assert full.states_explored >= cut.states_explored

    def test_state_cap_marks_truncated(self):
        result = check_model("eig", 4, 1, bound=2, max_states=10)
        assert result.truncated
        assert "truncated" in result.summary()

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            check_model("paxos", 4, 1, bound=1)
        with pytest.raises(ValueError, match="two players"):
            check_model("eig", 1, 0, bound=1)
        with pytest.raises(ValueError, match="0 <= t < n"):
            check_model("eig", 3, 3, bound=1)
        with pytest.raises(ValueError, match="bound"):
            check_model("eig", 3, 1, bound=-1)
        with pytest.raises(ValueError, match="unknown protocol"):
            model_horizon("paxos", 1)

    def test_coalition_family_shapes(self):
        assert coalition_family(4, 0) == [frozenset()]
        family = coalition_family(4, 1, "family")
        assert frozenset({3}) in family and frozenset({0}) in family
        assert len(coalition_family(4, 1, "all")) == 4
        assert len(coalition_family(4, 2, "all")) == 6
        assert coalition_family(4, 1, [[2]]) == [frozenset({2})]
        with pytest.raises(ValueError, match="outside"):
            coalition_family(4, 1, [[7]])


# ----------------------------------------------------------------------
# Traces: replay, shrinking, serialization
# ----------------------------------------------------------------------


def _crash_trace(**overrides):
    base = dict(
        protocol="eig",
        n=3,
        t=1,
        general_value=1,
        faulty=(2,),
        invariant="validity",
        events=(
            CorruptionEvent(0, 2, CorruptionAction(CRASH, reach=0)),
        ),
        bound=2,
    )
    base.update(overrides)
    return CounterexampleTrace(**base)


class TestCounterexampleTrace:
    def test_crash_only_compiles_to_crash_adversary(self):
        trace = _crash_trace()
        assert trace.is_crash_only()
        adversary = trace.to_adversary()
        assert isinstance(adversary, CrashAdversary)
        schedule = trace.crash_schedule()
        assert schedule is not None
        assert schedule.times == {2: 0}
        schedule.validate(3)
        assert trace.replay_violates()

    def test_mixed_trace_compiles_to_scripted_adversary(self):
        trace = _crash_trace(
            events=(
                CorruptionEvent(0, 2, CorruptionAction(SILENCE)),
                CorruptionEvent(1, 2, CorruptionAction(CRASH, reach=1)),
            ),
        )
        assert not trace.is_crash_only()
        assert trace.crash_schedule() is None
        assert isinstance(trace.to_adversary(), ScriptedAdversary)

    def test_double_crash_rejected(self):
        with pytest.raises(ValueError, match="crash twice"):
            _crash_trace(
                events=(
                    CorruptionEvent(0, 2, CorruptionAction(CRASH, reach=0)),
                    CorruptionEvent(1, 2, CorruptionAction(CRASH, reach=0)),
                ),
            )

    def test_json_round_trip(self, tmp_path):
        trace = check_model("phase_king", 4, 1, bound=2,
                            coalitions="all").counterexample
        rebuilt = CounterexampleTrace.from_json_obj(trace.to_json_obj())
        assert rebuilt == trace
        path = tmp_path / "cex.json"
        trace.save(str(path))
        assert CounterexampleTrace.load(str(path)) == trace

    def test_shrunk_trace_is_one_minimal(self):
        """Removing any single remaining event kills the violation."""
        result = check_model("phase_king", 4, 1, bound=2, coalitions="all")
        trace = result.counterexample
        assert shrink_trace(trace).events == trace.events  # fixed point
        from dataclasses import replace as dc_replace

        for index in range(len(trace.events)):
            thinner = dc_replace(
                trace,
                events=trace.events[:index] + trace.events[index + 1:],
            )
            assert not thinner.replay_violates()

    def test_unknown_protocol_replay_rejected(self):
        trace = _crash_trace(protocol="paxos")
        with pytest.raises(ValueError, match="unknown protocol"):
            trace.replay()


# ----------------------------------------------------------------------
# Replay determinism (property-based)
# ----------------------------------------------------------------------


def _eig31_events():
    """Arbitrary well-formed adversary plays for the eig (3,1) model."""
    horizon = model_horizon("eig", 1)
    action = st.one_of(
        st.just(CorruptionAction(SILENCE)),
        st.builds(
            lambda targets: CorruptionAction(FLIP, targets=tuple(sorted(targets))),
            st.sets(st.sampled_from([0, 1]), min_size=1, max_size=2),
        ),
    )
    event = st.builds(
        CorruptionEvent,
        round=st.integers(min_value=0, max_value=horizon - 1),
        node=st.just(2),
        action=action,
    )
    crash = st.builds(
        CorruptionEvent,
        round=st.integers(min_value=0, max_value=horizon - 1),
        node=st.just(2),
        action=st.builds(
            CorruptionAction,
            kind=st.just(CRASH),
            reach=st.integers(min_value=0, max_value=3),
        ),
    )
    return st.tuples(
        st.lists(event, max_size=3), st.one_of(st.none(), crash)
    ).map(lambda pair: tuple(pair[0]) + ((pair[1],) if pair[1] else ()))


class TestReplayDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(events=_eig31_events(), general_value=st.integers(0, 1))
    def test_any_trace_replays_identically(self, events, general_value):
        """Two replays of the same trace agree on outputs *and* on every
        message put on the wire — the simulator is deterministic given
        the compiled adversary."""
        trace = _crash_trace(
            events=events, general_value=general_value, invariant="agreement"
        )
        first = trace.replay()
        second = trace.replay()
        assert first.outputs == second.outputs
        assert first.trace == second.trace
        assert trace.replay_violates(first) == trace.replay_violates(second)

    def test_checker_emitted_counterexample_is_stable(self):
        trace = check_model("eig", 3, 1, bound=2).counterexample
        outcomes = [trace.replay() for _ in range(3)]
        assert len({tuple(sorted(o.outputs.items())) for o in outcomes}) == 1
        assert all(trace.replay_violates(o) for o in outcomes)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


class TestInvariants:
    def test_first_violation_order_and_names(self):
        ctx = InvariantContext(n=3, t=1, general_value=1, faulty=frozenset({2}))
        assert first_violation(BYZANTINE_AGREEMENT, {0: 1, 1: 1}, ctx) is None
        assert (
            first_violation(BYZANTINE_AGREEMENT, {0: None, 1: 1}, ctx)
            == "termination"
        )
        assert (
            first_violation(BYZANTINE_AGREEMENT, {0: 0, 1: 1}, ctx)
            == "agreement"
        )
        assert (
            first_violation(BYZANTINE_AGREEMENT, {0: 0, 1: 0}, ctx)
            == "validity"
        )

    def test_validity_vacuous_when_general_faulty(self):
        ctx = InvariantContext(n=3, t=1, general_value=1, faulty=frozenset({0}))
        assert ctx.general_faulty
        assert first_violation(BYZANTINE_AGREEMENT, {1: 0, 2: 0}, ctx) is None

    def test_get_invariant_unknown(self):
        with pytest.raises(KeyError):
            get_invariant("liveness")


# ----------------------------------------------------------------------
# The corruption alphabet
# ----------------------------------------------------------------------


class TestCorruptionAlphabet:
    def test_default_menu_for_n4(self):
        actions = CorruptionAlphabet().actions_for(1, 4, frozenset({1}))
        kinds = [a.kind for a in actions]
        assert kinds[0] == "honest"
        flips = [a for a in actions if a.kind == FLIP]
        # Non-empty subsets of the 3 honest nodes.
        assert len(flips) == 7
        assert all(1 not in a.targets for a in flips)
        assert sum(1 for a in actions if a.kind == SILENCE) == 1
        reaches = sorted(a.reach for a in actions if a.kind == CRASH)
        assert reaches == [0, 1, 2, 3, 4]

    def test_flip_universe_and_cap(self):
        all_targets = CorruptionAlphabet(flip_targets="all", max_flip_targets=1)
        actions = all_targets.actions_for(1, 4, frozenset({1}))
        flips = [a for a in actions if a.kind == FLIP]
        assert [a.targets for a in flips] == [(0,), (1,), (2,), (3,)]
        with pytest.raises(ValueError, match="flip_targets"):
            CorruptionAlphabet(flip_targets="everyone").actions_for(
                1, 4, frozenset({1})
            )

    def test_unknown_action_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown action kind"):
            CorruptionAction("bribe")

    def test_flip_payload_semantics(self):
        assert flip_payload(0) == 1 and flip_payload(1) == 0
        assert flip_payload(2) == 2  # non-decision ints pass through
        assert flip_payload(True) is True  # bools are not decision bits
        assert flip_payload({"v": [0, (1, None)]}) == {"v": [1, (0, None)]}


# ----------------------------------------------------------------------
# Hash-consing: canonical encoding + the digest store
# ----------------------------------------------------------------------


class TestCanonicalBytes:
    def test_dict_insertion_order_invariance(self):
        a = {"x": 1, "y": {2: "b", 1: "a"}}
        b = {"y": {1: "a", 2: "b"}, "x": 1}
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_type_tags_distinguish(self):
        assert canonical_bytes((1, 2)) != canonical_bytes([1, 2])
        assert canonical_bytes(1) != canonical_bytes(True)
        assert canonical_bytes("1") != canonical_bytes(1)
        assert canonical_bytes(None) not in (
            canonical_bytes(0),
            canonical_bytes(False),
        )

    def test_set_order_invariance(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})

    def test_unhashable_dict_keys_still_canonical(self):
        # EIG trees key on tuples; mixed key types fall back to
        # encoding-sorted pairs rather than raising.
        mixed = {(1, 2): "a", "path": "b"}
        flipped = {"path": "b", (1, 2): "a"}
        assert canonical_bytes(mixed) == canonical_bytes(flipped)

    def test_unknown_type_is_hard_error(self):
        with pytest.raises(TypeError, match="canonically encode"):
            canonical_bytes(object())


class TestDigestStore:
    def test_batch_dedup_keeps_max_budget(self):
        store = DigestStore()
        d = b"\x01" * 32
        keep = store.admit([d, d, d], [1, 3, 2])
        assert list(keep) == [1]  # the budget-3 representative
        assert len(store) == 1

    def test_dominated_revisit_rejected_improving_admitted(self):
        store = DigestStore()
        d = b"\x02" * 32
        assert list(store.admit([d], [2])) == [0]
        assert list(store.admit([d], [2])) == []  # equal budget: dominated
        assert list(store.admit([d], [1])) == []  # lower: dominated
        assert list(store.admit([d], [3])) == [0]  # strictly higher: back in

    def test_empty_batch(self):
        store = DigestStore()
        assert store.admit([], []).size == 0

    def test_distinct_digests_all_admitted(self):
        store = DigestStore()
        batch = [bytes([i]) * 32 for i in range(5)]
        assert sorted(store.admit(batch, [0] * 5)) == [0, 1, 2, 3, 4]
        assert len(store) == 5


# ----------------------------------------------------------------------
# Simulator hooks: fork / step_round / pending inboxes
# ----------------------------------------------------------------------


def _eig_net(n=3, t=1, general_value=1):
    nodes = [
        EIGNode(i, n, t, general_value if i == 0 else None) for i in range(n)
    ]
    return Network(nodes, NoFaultAdversary())


class TestNetworkHooks:
    def test_fork_is_independent(self):
        net = _eig_net().step_round()
        fork = net.fork()
        net.step_round()
        assert fork.round_number == 1 and net.round_number == 2

    def test_fork_then_step_matches_original(self):
        """Stepping a fork and the original produces identical states."""
        net = _eig_net()
        fork = net.fork()
        horizon = model_horizon("eig", 1)
        for _ in range(horizon):
            net.step_round()
            fork.step_round()
            assert network_digest(net, {}) == network_digest(fork, {})
        assert net.honest_outputs() == fork.honest_outputs()

    def test_pending_inboxes_reflect_traffic(self):
        net = _eig_net().step_round()
        inboxes = net.pending_inboxes()
        assert len(inboxes) == 3
        assert all(
            isinstance(m, Message)
            for m in itertools.chain.from_iterable(inboxes)
        )

    def test_set_pending_inboxes_round_trips(self):
        net = _eig_net().step_round()
        saved = net.pending_inboxes()
        net.set_pending_inboxes([[], [], []])
        assert net.pending_inboxes() == ((), (), ())
        net.set_pending_inboxes(saved)
        assert net.pending_inboxes() == saved

    def test_set_pending_inboxes_validates_length(self):
        net = _eig_net()
        with pytest.raises(ValueError, match="expected 3 inboxes"):
            net.set_pending_inboxes([[], []])

    def test_emptied_inboxes_starve_the_protocol(self):
        """Overriding deliveries actually changes the execution."""
        starved = _eig_net()
        reference = run_eig_agreement(3, 1, 1, adversary=NoFaultAdversary())
        horizon = model_horizon("eig", 1)
        for _ in range(horizon):
            starved.step_round()
            starved.set_pending_inboxes([[], [], []])
        assert starved.honest_outputs() != reference.outputs


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCLI:
    def test_violation_exit_trace_and_replay(self, tmp_path, capsys):
        out = tmp_path / "cex.json"
        code = verify_main(
            [
                "--protocol", "eig", "--n", "3", "--t", "1",
                "--bound", "2", "--trace-out", str(out), "--quiet",
            ]
        )
        assert code == 1
        assert out.exists()
        assert "reproduces" in capsys.readouterr().out
        assert verify_main(["--replay", str(out), "--quiet"]) == 0

    def test_pass_exit_zero(self, capsys):
        code = verify_main(
            [
                "--protocol", "eig", "--n", "4", "--t", "1",
                "--bound", "1", "--quiet",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_explicit_coalition_and_json(self, tmp_path):
        report = tmp_path / "result.json"
        code = verify_main(
            [
                "--protocol", "eig", "--n", "3", "--t", "1", "--bound", "1",
                "--coalitions", "1", "--json", str(report), "--quiet",
            ]
        )
        assert code in (0, 1)
        assert report.exists()

    def test_bad_protocol_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            verify_main(["--protocol", "paxos"])
        assert excinfo.value.code == 2

    def test_bad_params_exit_2_without_traceback(self, tmp_path):
        """Usage errors (bad model params, unreadable traces) exit 2."""
        for argv in (
            ["--n", "1", "--t", "0", "--bound", "1"],
            ["--n", "3", "--t", "1", "--bound", "-2"],
            ["--n", "3", "--t", "1", "--bound", "1", "--coalitions", "bogus"],
            ["--replay", str(tmp_path / "missing.json")],
        ):
            with pytest.raises(SystemExit) as excinfo:
                verify_main(argv)
            assert excinfo.value.code == 2

    def test_tampered_trace_replay_exits_1(self, tmp_path):
        trace = check_model("eig", 3, 1, bound=2).counterexample
        from dataclasses import replace as dc_replace

        tampered = dc_replace(
            trace,
            events=(
                CorruptionEvent(0, 2, CorruptionAction(SILENCE)),
            ),
        )
        path = tmp_path / "tampered.json"
        tampered.save(str(path))
        assert verify_main(["--replay", str(path), "--quiet"]) == 1
