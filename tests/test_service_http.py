"""HTTP round-trip tests against a live server on an ephemeral port.

One real server per test (port 0 → OS-assigned), talked to through
:class:`repro.service.client.ServiceClient` exactly as a remote caller
would — covering scenario listing, sweep submit/poll/results, verbatim
blob fetch by content key, single-flight over HTTP, the synchronous
``/v1/solve`` endpoint, and the error envelope.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.experiments.registry import scenario, unregister
from repro.experiments.runner import run_experiments
from repro.games.normal_form import NormalFormGame
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import ResultStore


@pytest.fixture
def service(tmp_path):
    """A live server + client + store triple, torn down after the test."""
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    try:
        yield client, store, server
    finally:
        server.shutdown()
        server.server_close()
        server.manager.shutdown()


@pytest.fixture
def gate_scenario():
    """A scenario whose cases block on an event (for in-flight states)."""
    gate = threading.Event()

    @scenario(family="_svc_test", name="_svc_gated", params={"x": [1, 2]})
    def _svc_gated(x: int, seed: int):
        """Toy scenario that waits for the test to open the gate."""
        gate.wait(10)
        return {"y": x}

    try:
        yield gate
    finally:
        gate.set()
        unregister("_svc_gated")


def test_health_and_scenario_listing(service):
    client, _store, _server = service
    health = client.wait_until_up()
    assert health["status"] == "ok"
    assert health["store"]["disk_entries"] == 0
    listing = client.scenarios()
    names = {entry["name"] for entry in listing}
    assert "coordination_robustness" in names
    assert all({"name", "family", "n_cases"} <= set(e) for e in listing)


def test_sweep_round_trip_matches_local_run(service):
    client, _store, _server = service
    job, remote = client.run_sweep(scenarios=["coordination_robustness"])
    assert job["status"] == "done"
    assert job["total_cases"] == job["completed_cases"] == len(remote)
    local = run_experiments(scenarios=["coordination_robustness"])

    def rows(results):
        """Identity + metrics rows, JSON-coerced, timing dropped."""
        out = []
        for r in results:
            row = r.to_dict()
            row.pop("elapsed")
            out.append(row)
        return out

    assert rows(remote) == rows(local)


def test_warm_rerun_full_cache_hit_and_cached_flags(service):
    client, _store, _server = service
    cold_job, cold = client.run_sweep(scenarios=["coordination_robustness"])
    warm_job, warm = client.run_sweep(scenarios=["coordination_robustness"])
    assert cold_job["cache_misses"] == len(cold)
    assert warm_job["cache_hits"] == len(warm)
    assert all(r.cached for r in warm)
    assert not any(r.cached for r in cold)
    assert warm.to_json_obj() == cold.to_json_obj()


def test_fetch_by_key_serves_verbatim_store_bytes(service):
    client, store, _server = service
    client.run_sweep(scenarios=["coordination_robustness"])
    key = store.key_for("coordination_robustness", {"n": 3}, 0, 0)
    over_http = client.fetch_bytes(key)
    with open(store.path_for(key), "rb") as handle:
        assert over_http == handle.read()
    blob = json.loads(over_http)
    assert blob["scenario"] == "coordination_robustness"
    assert blob["params"] == {"n": 3}


def test_concurrent_http_submits_single_flight(service, gate_scenario):
    client, _store, _server = service
    n = 8
    with ThreadPoolExecutor(max_workers=n) as pool:
        replies = list(
            pool.map(
                lambda _: client.submit_sweep(scenarios=["_svc_gated"]),
                range(n),
            )
        )
    assert len({r["job_id"] for r in replies}) == 1
    gate_scenario.set()
    status = client.wait_for_job(replies[0]["job_id"], timeout=30)
    assert status["status"] == "done"
    assert status["submissions"] == n


def test_results_before_done_is_409(service, gate_scenario):
    client, _store, _server = service
    submitted = client.submit_sweep(scenarios=["_svc_gated"])
    deadline = time.monotonic() + 5
    while client.job(submitted["job_id"])["status"] == "queued":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    with pytest.raises(ServiceError) as excinfo:
        client.results(submitted["job_id"])
    assert excinfo.value.status == 409
    gate_scenario.set()
    assert client.wait_for_job(submitted["job_id"], timeout=30)["status"] == "done"


def test_solve_endpoint_classics_and_explicit_game(service):
    client, _store, _server = service
    pd = client.solve(classic="prisoners_dilemma", method="pure")
    assert pd["equilibria"] == [[1, 1]] and pd["count"] == 1

    mp = client.solve(classic="matching_pennies", method="zerosum")
    assert mp["value"] == pytest.approx(0.0)
    assert mp["strategies"][0] == pytest.approx([0.5, 0.5])

    fp = client.solve(
        classic="matching_pennies", method="fictitious_play", iterations=2000
    )
    assert np.allclose(fp["empirical"], [[0.5, 0.5], [0.5, 0.5]], atol=0.05)
    assert fp["iterations"] == 2000

    game = NormalFormGame.from_bimatrix([[2, 0], [0, 1]], [[1, 0], [0, 2]])
    explicit = client.solve(game=game.to_json_obj(), method="pure")
    assert sorted(explicit["equilibria"]) == [[0, 0], [1, 1]]

    sized = client.solve(classic="coordination_01_game", n_players=3, method="pure")
    assert sized["game"]["n_players"] == 3
    assert sized["count"] >= 2  # all-0 and all-1 coordination points


def test_game_json_round_trip():
    game = NormalFormGame.from_bimatrix(
        [[2, 0], [0, 1]],
        [[1, 0], [0, 2]],
        players=["row", "col"],
        action_labels=[["u", "d"], ["l", "r"]],
        name="bos-ish",
    )
    rebuilt = NormalFormGame.from_json_obj(
        json.loads(json.dumps(game.to_json_obj()))
    )
    assert np.array_equal(rebuilt.payoffs, game.payoffs)
    assert rebuilt.players == game.players
    assert rebuilt.action_labels == game.action_labels
    assert rebuilt.name == game.name


def test_error_envelope(service):
    client, _store, _server = service
    with pytest.raises(ServiceError) as excinfo:
        client.job("job-999")
    assert excinfo.value.status == 404
    assert "unknown job" in excinfo.value.message

    with pytest.raises(ServiceError) as excinfo:
        client.fetch("deadbeef" * 8)
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client.fetch("NOT-A-HEX-KEY")
    assert excinfo.value.status == 400

    # Path-traversal shapes never reach the store: the extra slash
    # falls off the route table entirely.
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/results/../escape")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        client.solve(classic="not_a_game", method="pure")
    assert excinfo.value.status == 400
    assert "unknown classic" in excinfo.value.message

    with pytest.raises(ServiceError) as excinfo:
        client.solve(classic="matching_pennies", method="quantum")
    assert excinfo.value.status == 400

    # Exponential-size requests are rejected before the payoff tensor
    # is ever materialized (this must answer fast, not allocate GBs).
    start = time.monotonic()
    with pytest.raises(ServiceError) as excinfo:
        client.solve(classic="coordination_01_game", n_players=25, method="pure")
    assert excinfo.value.status == 400
    assert "n_players" in excinfo.value.message
    assert time.monotonic() - start < 5.0

    # Unknown scenario names are accepted at submit time (the job
    # reports the failure); malformed request fields are rejected early.
    accepted = client.submit_sweep(scenarios=["_no_such_scenario_"])
    assert client.wait_for_job(accepted["job_id"], timeout=10)["status"] == "error"
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/sweeps", {"bogus": 1})
    assert excinfo.value.status == 400

    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/nope")
    assert excinfo.value.status == 404


def test_keep_alive_survives_failed_posts(service):
    """An errored POST must not desync later requests on the same socket."""
    import http.client

    client, _store, server = service
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        # 1. POST with a body to an unknown route: 404 *with* the body
        #    drained, so the connection stays usable.
        conn.request(
            "POST",
            "/v1/nope",
            body=json.dumps({"pad": "x" * 2048}),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 404
        resp.read()
        # 2. A valid request on the SAME connection must still work.
        conn.request("GET", "/v1/health")
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.read())["status"] == "ok"
        # 3. Same for a request whose body errors mid-validation.
        conn.request(
            "POST",
            "/v1/sweeps",
            body=json.dumps({"bogus": 1, "pad": "y" * 2048}),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 400
        resp.read()
        conn.request("GET", "/v1/health")
        resp = conn.getresponse()
        assert resp.status == 200
        resp.read()
    finally:
        conn.close()


def test_smoke_sweep_over_http(service):
    client, store, _server = service
    job, results = client.run_sweep(smoke=True)
    assert job["status"] == "done"
    families = {r.family for r in results}
    assert len(results) == len(families)  # one case per family
    assert store.stats()["disk_entries"] == len(results)
    # Second smoke run is a full cache hit.
    job2, _ = client.run_sweep(smoke=True)
    assert job2["cache_hits"] == len(results) and job2["cache_misses"] == 0
