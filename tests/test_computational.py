"""Tests for computational Nash equilibrium (E6, E7, E8)."""

import numpy as np
import pytest

from repro.core.computational import (
    ConstantMachine,
    LambdaMachine,
    MachineGame,
    RandomizingMachine,
    VMMachine,
    computational_nash_equilibria,
    default_frpd_machines,
    frpd_machine_game,
    is_computational_nash,
    primality_machine_game,
    roshambo_machine_game,
)
from repro.machines.vm import trial_division_program


class TestMachinePrimitives:
    def test_constant_machine(self):
        m = ConstantMachine(2, cost=1.5)
        assert m.action_distribution("anything") == {2: 1.0}
        assert m.complexity("anything") == 1.5

    def test_lambda_machine(self):
        m = LambdaMachine(act=lambda x: x % 2, cost=lambda x: float(x))
        assert m.action_distribution(5) == {1: 1.0}
        assert m.complexity(3) == 3.0

    def test_randomizing_machine_validation(self):
        with pytest.raises(ValueError):
            RandomizingMachine({0: 0.5, 1: 0.6})

    def test_vm_machine_counts_steps(self):
        m = VMMachine(trial_division_program())
        cheap = m.complexity(7)
        expensive = m.complexity(10_007)
        assert expensive > cheap  # steps grow with the input

    def test_vm_machine_caches(self):
        m = VMMachine(trial_division_program())
        assert m.complexity(97) == m.complexity(97)


class TestMachineGameCore:
    def build_simple_game(self):
        # Matching pennies as a machine game, everyone cost-free.
        machines = [ConstantMachine(a, cost=0.0) for a in range(2)]
        mixer = RandomizingMachine({0: 0.5, 1: 0.5}, cost=0.0, name="mix")

        def utility_fn(types, actions, complexities):
            match = 1.0 if actions[0] == actions[1] else -1.0
            return [match, -match]

        return MachineGame(
            type_spaces=[[0], [0]],
            prior={(0, 0): 1.0},
            machine_sets=[machines + [mixer], machines + [mixer]],
            utility_fn=utility_fn,
        )

    def test_expected_utilities(self):
        game = self.build_simple_game()
        heads = game.machine_sets[0][0]
        mixer = game.machine_sets[0][2]
        assert game.expected_utility(0, [heads, heads]) == pytest.approx(1.0)
        assert game.expected_utility(0, [heads, mixer]) == pytest.approx(0.0)

    def test_equilibrium_with_free_randomization(self):
        game = self.build_simple_game()
        mixer = game.machine_sets[0][2]
        assert is_computational_nash(game, [mixer, mixer])

    def test_pure_profiles_not_equilibria(self):
        game = self.build_simple_game()
        heads = game.machine_sets[0][0]
        assert not is_computational_nash(game, [heads, heads])

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            MachineGame(
                [[0]], {(0,): 0.5}, [[ConstantMachine(0)]], lambda *a: [0]
            )

    def test_type_space_membership_validated(self):
        with pytest.raises(ValueError):
            MachineGame(
                [[0]], {(1,): 1.0}, [[ConstantMachine(0)]], lambda *a: [0]
            )

    def test_empty_machine_set_rejected(self):
        with pytest.raises(ValueError):
            MachineGame([[0]], {(0,): 1.0}, [[]], lambda *a: [0])


class TestPrimalityGame:
    """Example 3.1: equilibrium flips from answering to playing safe."""

    def test_small_inputs_answering_is_equilibrium(self):
        game = primality_machine_game([97, 91, 53], step_price=0.001)
        eqs = computational_nash_equilibria(game)
        names = {m[0].name for m in eqs}
        assert names == {"trial_division"}

    def test_large_inputs_safe_wins(self):
        # Mix primes and composites so blind guessing has expected payoff
        # 0 < 1 (safe); at this step price even the polynomial Fermat
        # tester costs more than the $10 reward on 40-bit inputs.
        numbers = [10**12 + 39, 10**12 + 61, 10**12 + 1, 10**12 + 3]
        game = primality_machine_game(numbers, step_price=0.03)
        eqs = computational_nash_equilibria(game)
        names = {m[0].name for m in eqs}
        assert names == {"play_safe"}

    def test_moderate_inputs_polynomial_tester_wins(self):
        # The intermediate regime: trial division is priced out but the
        # polynomial VM tester still earns more than playing safe.
        numbers = [10**12 + 39, 10**12 + 61, 10**12 + 1, 10**12 + 3]
        game = primality_machine_game(numbers, step_price=0.005)
        eqs = computational_nash_equilibria(game)
        names = {m[0].name for m in eqs}
        assert names <= {"fermat_vm", "miller_rabin"} and names

    def test_zero_step_price_recovers_standard_nash(self):
        # With computation free, the unique equilibrium answers correctly.
        game = primality_machine_game([97, 91], step_price=0.0)
        eqs = computational_nash_equilibria(game)
        answerers = ("trial_division", "miller_rabin", "fermat_vm")
        assert eqs and all(m[0].name in answerers for m in eqs)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            primality_machine_game([])


class TestFRPDGame:
    """Example 3.2: tit-for-tat under memory pricing."""

    def test_tft_equilibrium_long_game(self):
        game = frpd_machine_game(n_rounds=20, delta=0.9, memory_price=0.05)
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        assert is_computational_nash(game, [tft, tft])

    def test_tft_not_equilibrium_when_memory_free(self):
        game = frpd_machine_game(n_rounds=20, delta=0.9, memory_price=0.0)
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        # With free memory, defecting at the last round is profitable.
        assert not is_computational_nash(game, [tft, tft])

    def test_always_defect_remains_equilibrium(self):
        game = frpd_machine_game(n_rounds=10, delta=0.9, memory_price=0.05)
        machines = game.machine_sets[0]
        alld = next(m for m in machines if m.name == "always_defect")
        assert is_computational_nash(game, [alld, alld])

    def test_asymmetric_charging(self):
        # Paper: bounded player plays TFT; unbounded best-responds with
        # cooperate-then-defect-at-the-end.
        game = frpd_machine_game(
            n_rounds=12, delta=0.9, memory_price=0.05, charge_player=0
        )
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        counter = next(m for m in machines if m.name.startswith("tft_defect"))
        assert is_computational_nash(game, [tft, counter])

    def test_crossover_in_game_length(self):
        # Short game: defecting at the end worth it; long game: not.
        short = frpd_machine_game(n_rounds=3, delta=0.9, memory_price=0.01)
        long_ = frpd_machine_game(n_rounds=40, delta=0.9, memory_price=0.01)
        for game, expected in ((short, False), (long_, True)):
            machines = game.machine_sets[0]
            tft = next(m for m in machines if m.name == "tit_for_tat")
            assert is_computational_nash(game, [tft, tft]) == expected

    def test_machine_space_documented(self):
        machines = default_frpd_machines(8)
        names = {m.name for m in machines}
        assert "tit_for_tat" in names and "always_defect" in names


class TestRoshamboGame:
    """Example 3.3: no computational Nash equilibrium."""

    def test_no_equilibrium_with_paper_costs(self):
        game = roshambo_machine_game(
            deterministic_cost=1.0, randomization_cost=2.0
        )
        assert computational_nash_equilibria(game) == []

    def test_no_equilibrium_with_biased_randomizers_either(self):
        game = roshambo_machine_game(include_biased_randomizers=True)
        assert computational_nash_equilibria(game) == []

    def test_equal_costs_restore_equilibrium(self):
        # If randomizing costs the same as determinism, uniform mixing is
        # an equilibrium again (complexities cancel).
        game = roshambo_machine_game(
            deterministic_cost=1.0, randomization_cost=1.0
        )
        eqs = computational_nash_equilibria(game)
        assert any(
            m[0].name == "uniform" and m[1].name == "uniform" for m in eqs
        )

    def test_deviation_structure_matches_paper_argument(self):
        # Against a deterministic opponent the best response is the
        # beating deterministic machine, not the randomizer.
        game = roshambo_machine_game()
        rock = game.machine_sets[0][0]
        best, _value = game.best_response(1, [rock, rock])
        assert best.name == "paper"
