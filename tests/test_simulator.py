"""Unit tests for the synchronous message-passing simulator."""

from typing import List

import pytest

from repro.dist.faults import CrashSchedule
from repro.dist.simulator import (
    ByzantineRandomAdversary,
    CrashAdversary,
    Message,
    Network,
    NoFaultAdversary,
    Node,
    ScriptedAdversary,
)


class EchoNode(Node):
    """Round 0: broadcast own id.  Round 1: record what arrived."""

    def __init__(self, node_id, n_nodes):
        super().__init__(node_id, n_nodes)
        self.received: List[Message] = []

    def step(self, round_number, inbox):
        self.received.extend(inbox)
        if round_number == 0:
            return self.broadcast(("id", self.node_id))
        if round_number == 1:
            self.output = sorted(
                m.payload[1]
                for m in inbox
                if isinstance(m.payload, tuple) and m.payload[0] == "id"
            )
        return []


class ForgeryNode(Node):
    """Tries to spoof another sender; the network must re-stamp."""

    def step(self, round_number, inbox):
        if round_number == 0 and self.node_id == 1:
            return [Message(sender=99, recipient=0, payload="forged")]
        if inbox:
            self.output = inbox[0].sender
        return []


class TestNetworkBasics:
    def test_messages_delivered_next_round(self):
        nodes = [EchoNode(i, 3) for i in range(3)]
        Network(nodes).run(2)
        for node in nodes:
            assert node.output == [0, 1, 2]

    def test_sender_stamping_defeats_forgery(self):
        nodes = [ForgeryNode(i, 2) for i in range(2)]
        Network(nodes).run(2)
        # Node 0 received the forged message, but stamped with sender 1.
        assert nodes[0].output == 1

    def test_node_id_position_mismatch_rejected(self):
        nodes = [EchoNode(1, 2), EchoNode(0, 2)]
        with pytest.raises(ValueError):
            Network(nodes)

    def test_unknown_faulty_node_rejected(self):
        nodes = [EchoNode(i, 2) for i in range(2)]
        with pytest.raises(ValueError):
            Network(nodes, ByzantineRandomAdversary({5}))

    def test_run_until_decided(self):
        nodes = [EchoNode(i, 2) for i in range(2)]
        net = Network(nodes)
        net.run_until_decided(max_rounds=10)
        assert all(n.output is not None for n in nodes)

    def test_run_until_decided_timeout(self):
        class NeverDecides(Node):
            def step(self, round_number, inbox):
                return []

        nodes = [NeverDecides(i, 2) for i in range(2)]
        with pytest.raises(RuntimeError):
            Network(nodes).run_until_decided(max_rounds=5)

    def test_trace_recording(self):
        nodes = [EchoNode(i, 2) for i in range(2)]
        net = Network(nodes, record_trace=True)
        net.run(2)
        assert len(net.trace) == 2
        assert len(net.trace[0].sent) == 4  # 2 nodes broadcast to 2 each


class TestAdversaries:
    def test_no_fault_is_identity(self):
        adv = NoFaultAdversary()
        assert adv.corrupt_outbox(0, 0, ["x"], 2) == ["x"]
        assert not adv.is_faulty(0)

    def test_crash_immediately_silences(self):
        nodes = [EchoNode(i, 3) for i in range(3)]
        Network(nodes, CrashAdversary({2})).run(2)
        assert nodes[0].output == [0, 1]

    def test_crash_at_later_round(self):
        class TwoRoundBroadcaster(Node):
            def step(self, round_number, inbox):
                if round_number <= 1:
                    return self.broadcast(round_number)
                self.output = sorted(
                    (m.sender, m.payload) for m in inbox
                )
                return []

        nodes = [TwoRoundBroadcaster(i, 2) for i in range(2)]
        adv = CrashAdversary({1}, crash_round={1: 1})
        Network(nodes, adv).run(3)
        # Node 1's round-0 messages got out; round-1 did not.
        assert (1, 1) not in nodes[0].output
        # Node 0 still hears itself.
        assert (0, 1) in nodes[0].output

    def test_partial_reach_crash(self):
        nodes = [EchoNode(i, 3) for i in range(3)]
        adv = CrashAdversary({2}, crash_round={2: 0}, partial_reach={2: 1})
        Network(nodes, adv).run(2)
        # Node 0 (recipient < 1) heard node 2; node 1 did not.
        assert nodes[0].output == [0, 1, 2]
        assert nodes[1].output == [0, 1]

    def test_byzantine_random_is_deterministic_per_seed(self):
        def run(seed):
            nodes = [EchoNode(i, 3) for i in range(3)]
            Network(nodes, ByzantineRandomAdversary({2}, seed=seed)).run(2)
            return [tuple(m.payload for m in n.received) for n in nodes]

        assert run(7) == run(7)

    def test_scripted_adversary_rewrites(self):
        def script(node_id, round_number, honest_outbox, n_nodes):
            return [
                Message(sender=node_id, recipient=m.recipient, payload="lie")
                for m in honest_outbox
            ]

        nodes = [EchoNode(i, 2) for i in range(2)]
        Network(nodes, ScriptedAdversary({1}, script)).run(2)
        payloads = [m.payload for m in nodes[0].received if m.sender == 1]
        assert payloads == ["lie"]


class TestFaultEdgeCases:
    def test_crash_schedule_rejects_out_of_range_nodes(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            CrashSchedule({5: 1}).validate(3)
        with pytest.raises(ValueError, match="unknown nodes"):
            CrashSchedule({-1: 0}).validate(3)
        CrashSchedule({0: 2, 2: 0}).validate(3)  # in range: fine

    def test_crash_schedule_negative_tick_is_dead_on_arrival(self):
        schedule = CrashSchedule({1: -3})
        assert schedule.is_crashed(1, 0)
        assert schedule.is_crashed(1, 100)
        assert not schedule.is_crashed(0, 0)  # unscheduled nodes never crash
        assert schedule.crashed_ids() == frozenset({1})

    def test_crash_schedule_boundary_tick(self):
        schedule = CrashSchedule({1: 2})
        assert not schedule.is_crashed(1, 1)  # correct through tick tau-1
        assert schedule.is_crashed(1, 2)  # dead from tick tau on

    def test_empty_crash_schedule(self):
        schedule = CrashSchedule()
        schedule.validate(0)
        assert schedule.crashed_ids() == frozenset()
        assert not schedule.is_crashed(0, 10)

    def test_scripted_adversary_empty_faulty_set_is_identity(self):
        def script(node_id, round_number, honest_outbox, n_nodes):
            return []  # would silence everyone — but controls nobody

        nodes = [EchoNode(i, 2) for i in range(2)]
        Network(nodes, ScriptedAdversary((), script)).run(2)
        assert nodes[0].output == [0, 1]

    def test_scripted_adversary_silencing_script(self):
        nodes = [EchoNode(i, 3) for i in range(3)]
        silence = ScriptedAdversary({2}, lambda *_: [])
        Network(nodes, silence).run(2)
        assert nodes[0].output == [0, 1]

    def test_scripted_adversary_out_of_range_faulty_rejected(self):
        adversary = ScriptedAdversary({9}, lambda *_: [])
        with pytest.raises(ValueError, match="unknown nodes"):
            Network([EchoNode(i, 2) for i in range(2)], adversary)

    def test_crash_adversary_negative_crash_round(self):
        """A negative crash round means silent from round 0 onward."""
        nodes = [EchoNode(i, 3) for i in range(3)]
        adv = CrashAdversary({2}, crash_round={2: -1})
        Network(nodes, adv).run(2)
        assert nodes[0].output == [0, 1]
