"""Tests for the asynchronous substrate and Ben-Or consensus."""

import pytest

from repro.dist.async_sim import (
    AsyncMessage,
    AsyncNetwork,
    AsyncNode,
    BenOrNode,
    FIFOScheduler,
    NaiveWaitAllNode,
    RandomScheduler,
    StarvationScheduler,
    run_ben_or,
)


class PingNode(AsyncNode):
    """Sends one ping to the next node; records what it receives."""

    def __init__(self, node_id, n_nodes):
        super().__init__(node_id, n_nodes)
        self.received = []

    def on_start(self):
        return [
            AsyncMessage(
                sender=self.node_id,
                recipient=(self.node_id + 1) % self.n_nodes,
                payload=("ping", self.node_id),
            )
        ]

    def on_message(self, message):
        self.received.append(message)
        self.output = message.payload
        return []


class TestAsyncNetwork:
    def test_delivery_and_stamping(self):
        nodes = [PingNode(i, 3) for i in range(3)]
        AsyncNetwork(nodes, FIFOScheduler()).run()
        for i, node in enumerate(nodes):
            assert node.output == ("ping", (i - 1) % 3)
            assert node.received[0].sender == (i - 1) % 3

    def test_node_position_validation(self):
        with pytest.raises(ValueError):
            AsyncNetwork([PingNode(1, 2), PingNode(0, 2)])

    def test_crashed_node_receives_nothing(self):
        nodes = [PingNode(i, 3) for i in range(3)]
        net = AsyncNetwork(nodes, FIFOScheduler(), crashed={1: 0})
        net.run()
        assert nodes[1].received == []

    def test_random_scheduler_deterministic(self):
        def run(seed):
            nodes = [PingNode(i, 4) for i in range(4)]
            net = AsyncNetwork(nodes, RandomScheduler(seed))
            net.run()
            return [n.output for n in nodes]

        assert run(3) == run(3)

    def test_deadlock_detection(self):
        nodes = [NaiveWaitAllNode(i, 3, 1) for i in range(3)]
        net = AsyncNetwork(nodes, FIFOScheduler(), crashed={2: 0})
        net.run()
        assert net.is_deadlocked()

    def test_naive_protocol_works_without_faults(self):
        nodes = [NaiveWaitAllNode(i, 5, 1 if i < 3 else 0) for i in range(5)]
        net = AsyncNetwork(nodes, RandomScheduler(1))
        net.run()
        assert all(node.output == 1 for node in nodes)
        assert not net.is_deadlocked()


class TestBenOr:
    def test_unanimous_validity(self):
        for value in (0, 1):
            result = run_ben_or(
                5, 2, [value] * 5, scheduler=RandomScheduler(0)
            )
            assert result.agreement and result.validity
            assert set(result.outputs.values()) == {value}

    def test_mixed_inputs_reach_agreement(self):
        for seed in range(5):
            result = run_ben_or(
                5, 2, [0, 1, 0, 1, 1],
                scheduler=RandomScheduler(seed), seed=seed,
            )
            assert result.agreement

    def test_unanimous_decides_in_one_phase(self):
        result = run_ben_or(4, 1, [1, 1, 1, 1], scheduler=FIFOScheduler())
        # Every node should decide by the end of phase 1 (maybe having
        # started phase 2's bookkeeping).
        assert result.agreement and result.validity
        assert result.max_phase <= 2

    def test_tolerates_crashes(self):
        result = run_ben_or(
            5, 2, [1, 1, 1, 1, 1],
            scheduler=RandomScheduler(2),
            crashed={0: 10, 4: 0},
        )
        assert result.agreement and result.validity
        assert set(result.outputs) == {1, 2, 3}

    def test_survives_starvation_scheduler(self):
        for target in range(4):
            result = run_ben_or(
                4, 1, [0, 1, 1, 0],
                scheduler=StarvationScheduler(target, seed=target),
                seed=target,
            )
            assert result.agreement

    def test_crash_during_run_keeps_agreement(self):
        for seed in range(4):
            result = run_ben_or(
                5, 2, [0, 1, 1, 0, 1],
                scheduler=RandomScheduler(seed),
                crashed={1: 25},
                seed=seed,
            )
            assert result.agreement

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BenOrNode(0, 4, t=2, initial=0)  # t >= n/2
        with pytest.raises(ValueError):
            run_ben_or(3, 1, [0, 1])  # arity mismatch

    def test_deciders_drag_stragglers(self):
        # Even under heavy starvation of one node, the DECIDE broadcast
        # eventually reaches it and it outputs the same value.
        result = run_ben_or(
            5, 2, [1, 1, 1, 1, 1],
            scheduler=StarvationScheduler(3, seed=9),
        )
        assert result.outputs.get(3) == 1
