"""Integration tests: pipelines that span multiple subsystems.

Each test exercises a seam between packages the way the experiments do:
games -> solvers -> robustness; mediator -> SMPC cheap talk -> game
distribution; distributed protocol -> game-level verdicts; machine games
built from automata and the repeated-game engine.
"""

import numpy as np
import pytest

from repro.core.computational import frpd_machine_game, is_computational_nash
from repro.core.feasibility import Resources, mediator_implementability
from repro.core.robust import is_robust, robustness_report
from repro.dist.agreement import (
    run_eig_agreement,
    run_mediator_agreement,
    search_for_disagreement,
)
from repro.dist.simulator import ByzantineRandomAdversary
from repro.dynamics.tournament import round_robin_tournament
from repro.games.bayesian import BayesianGame
from repro.games.classics import (
    byzantine_agreement_game,
    chicken,
    prisoners_dilemma,
)
from repro.games.normal_form import profile_as_mixed
from repro.machines.automata import tit_for_tat_automaton
from repro.machines.strategies import strategy_zoo
from repro.mediators.base import DeterministicMediator, MediatedGame, TableMediator
from repro.mediators.cheap_talk import CheapTalkSimulation, distributions_match
from repro.solvers.correlated import correlated_equilibrium, is_correlated_equilibrium
from repro.solvers.support_enumeration import support_enumeration


class TestCorrelatedEquilibriumAsMediator:
    """The classical mediator (correlated equilibrium) agrees with the
    MediatedGame honesty check on complete-information games."""

    def test_chicken_correlated_device_is_honest_equilibrium(self):
        game = chicken()
        dist = correlated_equilibrium(game, objective="welfare")
        assert is_correlated_equilibrium(game, dist, tol=1e-6)

        bayesian = BayesianGame.from_normal_form(game)
        mediator = TableMediator({(0, 0): dist})
        mediated = MediatedGame(bayesian, mediator)
        assert mediated.is_honest_equilibrium(tol=1e-6)

    def test_non_equilibrium_device_detected(self):
        game = prisoners_dilemma()
        bayesian = BayesianGame.from_normal_form(game)
        mediator = TableMediator({(0, 0): {(0, 0): 1.0}})  # recommend C,C
        mediated = MediatedGame(bayesian, mediator)
        assert not mediated.is_honest_equilibrium()


class TestMediatorToCheapTalkPipeline:
    """Γ -> Γd -> ΓCT: the full Section 2 story on Byzantine agreement."""

    N = 5

    def build(self):
        game = byzantine_agreement_game(self.N)
        mediator = DeterministicMediator(
            game.num_types, lambda types: tuple([types[0]] * self.N)
        )
        return game, mediator

    def test_mediated_equilibrium_then_cheap_talk_implements(self):
        game, mediator = self.build()
        mediated = MediatedGame(game, mediator)
        assert mediated.is_honest_equilibrium()
        sim = CheapTalkSimulation(game, mediator, t=1, coin_resolution=4)
        assert sim.implements_mediator(n_samples=30, seed=0)

    def test_cheap_talk_action_distribution_matches_mediated(self):
        game, mediator = self.build()
        mediated = MediatedGame(game, mediator)
        sim = CheapTalkSimulation(game, mediator, t=1, coin_resolution=4)
        for types in [(0,) + (0,) * (self.N - 1), (1,) + (0,) * (self.N - 1)]:
            ideal = mediated.action_distribution(types)
            empirical = sim.sample_action_distribution(types, 25, seed=1)
            assert distributions_match(empirical, ideal, 0.05)

    def test_feasibility_verdict_matches_simulation_capability(self):
        # n=5, k=1, t=1: 5 <= 3k+3t = 6, so unconditional implementation is
        # ruled out -- and indeed our pipeline needed its robust decoder
        # (an error-correction resource) to survive a fault.
        verdict = mediator_implementability(5, 1, 1)
        assert not verdict.implementable
        verdict_with_punishment = mediator_implementability(
            5, 1, 1, Resources(punishment_strategy=True, utilities_known=True)
        )
        # 5 <= 2k+3t = 5: still not implementable per bullet 4.
        assert not verdict_with_punishment.implementable
        verdict_7 = mediator_implementability(7, 1, 1)
        assert verdict_7.implementable


class TestAgreementMatchesGameForm:
    """The distributed protocol and the Bayesian game agree on outcomes."""

    def test_protocol_outputs_maximize_game_utility(self):
        game = byzantine_agreement_game(4)
        outcome = run_eig_agreement(4, 1, general_value=1)
        actions = tuple(outcome.outputs[i] for i in range(4))
        types = (1, 0, 0, 0)
        value = game.payoff_table[(0, *types, *actions)]
        assert value == 1.0  # the BA spec is exactly utility 1

    def test_disagreement_means_zero_utility(self):
        violation = search_for_disagreement(3, 1, "eig", random_seeds=5)
        assert violation is not None
        game = byzantine_agreement_game(3)
        actions = []
        for i in range(3):
            actions.append(violation.outputs.get(i, 0))
        types = (violation.general_value, 0, 0)
        value = game.payoff_table[(0, *types, *tuple(actions))]
        if not violation.agreement:
            assert value == 0.0

    def test_mediator_protocol_attains_equilibrium_payoffs(self):
        game = byzantine_agreement_game(4)
        mediator = DeterministicMediator(
            game.num_types, lambda types: tuple([types[0]] * 4)
        )
        mediated = MediatedGame(game, mediator)
        expected = mediated.honest_utilities()
        outcome = run_mediator_agreement(4, 1)
        assert outcome.correct
        np.testing.assert_allclose(expected, np.ones(4))


class TestRobustnessOfSolverOutput:
    """Solver output feeds directly into the robustness checkers."""

    def test_support_enumeration_profiles_are_10_robust(self):
        for game in (prisoners_dilemma(), chicken()):
            for profile in support_enumeration(game):
                assert is_robust(game, profile, 1, 0)

    def test_report_on_mixed_equilibrium(self):
        game = chicken()
        mixed = [p for p in support_enumeration(game) if p[0][0] not in (0, 1)]
        assert mixed
        report = robustness_report(game, mixed[0])
        assert report.is_nash


class TestMachineGameUsesRealPlayEngine:
    def test_frpd_payoffs_consistent_with_engine(self):
        from repro.games.repeated import RepeatedGame

        n_rounds, delta = 8, 0.9
        game = frpd_machine_game(n_rounds, delta, memory_price=0.0)
        machines = game.machine_sets[0]
        tft_idx = next(
            i for i, m in enumerate(machines) if m.name == "tit_for_tat"
        )
        engine = RepeatedGame(prisoners_dilemma(), n_rounds, delta)
        direct = engine.discounted_payoffs(
            tit_for_tat_automaton(), tit_for_tat_automaton()
        )
        tft = machines[tft_idx]
        assert game.expected_utility(0, [tft, tft]) == pytest.approx(
            direct[0]
        )

    def test_tournament_winner_is_machine_equilibrium_candidate(self):
        # The strategies that do well in the tournament are exactly the
        # cooperative reciprocators that the machine game certifies.
        result = round_robin_tournament(strategy_zoo(), rounds=100, delta=0.99)
        top = result.ranking()[0][0]
        assert top in {
            "tit_for_tat",
            "tit_for_two_tats",
            "grim_trigger",
            "pavlov",
            "always_cooperate",
        }
        game = frpd_machine_game(n_rounds=30, delta=0.95, memory_price=0.05)
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        assert is_computational_nash(game, [tft, tft])


class TestEndToEndRobustMediatorStory:
    """The paper's Section 2 narrative as one executable scenario."""

    def test_full_story(self):
        # 1. In the bargaining game, all-stay is Nash (indeed k-resilient
        #    for all k) but fragile: not 1-immune.
        from repro.games.classics import bargaining_game
        from repro.core.robust import is_k_resilient, is_t_immune

        game = bargaining_game(4)
        stay = profile_as_mixed((0, 0, 0, 0), game.num_actions)
        assert is_k_resilient(game, stay, 4)
        assert not is_t_immune(game, stay, 1)

        # 2. Byzantine agreement: trivial with a mediator...
        assert run_mediator_agreement(5, 1).correct

        # 3. ...implementable with cheap talk when n > 3t...
        adv = ByzantineRandomAdversary({4}, seed=0)
        assert run_eig_agreement(5, 1, 1, adv).correct

        # 4. ...and impossible when n <= 3t.
        assert search_for_disagreement(3, 1, random_seeds=5) is not None

        # 5. The threshold theorems classify all of this.
        assert mediator_implementability(7, 1, 1).implementable
        assert not mediator_implementability(3, 1, 1).implementable
