"""Unit tests for the solver substrate (pure, support enum, LH, LP, etc.)."""

import numpy as np
import pytest

from repro.games.classics import (
    battle_of_the_sexes,
    chicken,
    matching_pennies,
    prisoners_dilemma,
    roshambo,
    stag_hunt,
)
from repro.games.normal_form import NormalFormGame
from repro.solvers import (
    best_response_dynamics,
    correlated_equilibrium,
    epsilon_pure_equilibria,
    fictitious_play,
    is_correlated_equilibrium,
    iterated_strict_dominance,
    iterated_weak_dominance,
    lemke_howson,
    lemke_howson_all,
    mixed_dominated_actions,
    multi_population_replicator,
    pure_equilibria,
    replicator_dynamics,
    support_enumeration,
    zero_sum_equilibrium,
    zero_sum_value,
)


class TestPureSolvers:
    def test_pure_equilibria_pd(self):
        assert pure_equilibria(prisoners_dilemma()) == [(1, 1)]

    def test_epsilon_pure_widens_set(self):
        game = prisoners_dilemma()
        assert (0, 0) not in epsilon_pure_equilibria(game, 0.5)
        assert (0, 0) in epsilon_pure_equilibria(game, 2.0)  # regret exactly 2

    def test_best_response_dynamics_converges_on_pd(self):
        eq, trajectory = best_response_dynamics(prisoners_dilemma(), (0, 0))
        assert eq == (1, 1)
        assert trajectory[0] == (0, 0)

    def test_best_response_dynamics_cycles_on_matching_pennies(self):
        eq, _ = best_response_dynamics(
            matching_pennies(), (0, 0), max_iterations=50
        )
        assert eq is None

    def test_best_response_dynamics_stag_hunt(self):
        eq, _ = best_response_dynamics(stag_hunt(), (0, 1))
        assert eq in {(0, 0), (1, 1)}


class TestSupportEnumeration:
    def test_matching_pennies_unique_mixed(self):
        eqs = support_enumeration(matching_pennies())
        assert len(eqs) == 1
        np.testing.assert_allclose(eqs[0][0], [0.5, 0.5])
        np.testing.assert_allclose(eqs[0][1], [0.5, 0.5])

    def test_battle_of_sexes_three_equilibria(self):
        eqs = support_enumeration(battle_of_the_sexes())
        assert len(eqs) == 3

    def test_roshambo_uniform(self):
        eqs = support_enumeration(roshambo())
        assert len(eqs) == 1
        np.testing.assert_allclose(eqs[0][0], [1 / 3] * 3, atol=1e-9)

    def test_all_returned_profiles_are_nash(self):
        for game in (chicken(), stag_hunt(), battle_of_the_sexes()):
            for profile in support_enumeration(game):
                assert game.is_nash(profile, tol=1e-6)

    def test_requires_two_players(self):
        from repro.games.classics import coordination_01_game

        with pytest.raises(ValueError):
            support_enumeration(coordination_01_game(3))


class TestLemkeHowson:
    def test_finds_nash_on_standard_games(self):
        for game in (
            prisoners_dilemma(),
            matching_pennies(),
            chicken(),
            stag_hunt(),
            battle_of_the_sexes(),
        ):
            profile = lemke_howson(game)
            assert game.is_nash(profile, tol=1e-6), game.name

    def test_all_labels_dedupe(self):
        eqs = lemke_howson_all(stag_hunt())
        assert 1 <= len(eqs) <= 3
        for profile in eqs:
            assert stag_hunt().is_nash(profile, tol=1e-6)

    def test_nonsquare_game(self):
        game = NormalFormGame.from_bimatrix(
            [[3, 3], [2, 5], [0, 6]], [[3, 2], [2, 6], [3, 1]]
        )
        profile = lemke_howson(game)
        assert game.is_nash(profile, tol=1e-6)

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            lemke_howson(matching_pennies(), initial_dropped_label=99)


class TestZeroSum:
    def test_matching_pennies_value(self):
        assert zero_sum_value(matching_pennies()) == pytest.approx(0.0, abs=1e-8)

    def test_roshambo_equilibrium(self):
        profile, value = zero_sum_equilibrium(roshambo())
        assert value == pytest.approx(0.0, abs=1e-8)
        assert roshambo().is_nash(profile, tol=1e-6)

    def test_asymmetric_zero_sum(self):
        game = NormalFormGame.from_bimatrix([[2, -1], [-1, 1]])
        profile, value = zero_sum_equilibrium(game)
        # value = (2*1 - 1) / (2 + 1 + 1 + 1) = 1/5
        assert value == pytest.approx(0.2)
        assert game.is_nash(profile, tol=1e-6)

    def test_rejects_general_sum(self):
        with pytest.raises(ValueError):
            zero_sum_equilibrium(prisoners_dilemma())


class TestDominance:
    def test_pd_reduces_to_defect(self):
        result = iterated_strict_dominance(prisoners_dilemma())
        assert result.kept == [[1], [1]]
        assert len(result.rounds) == 1

    def test_mixed_domination_detects_non_pure_case(self):
        # Middle row dominated by a 50/50 mix of top and bottom, not by
        # either pure row.
        game = NormalFormGame.from_bimatrix(
            [[4, 0], [1.5, 1.5], [0, 4]], [[0, 0], [0, 0], [0, 0]]
        )
        assert game.dominated_actions(0, strict=True) == []
        assert mixed_dominated_actions(game, 0, strict=True) == [1]

    def test_iterated_strict_with_mixed(self):
        game = NormalFormGame.from_bimatrix(
            [[4, 0], [1.5, 1.5], [0, 4]], [[1, 0], [0, 0], [0, 1]]
        )
        result = iterated_strict_dominance(game, use_mixed=True)
        assert 1 not in result.kept[0]

    def test_weak_dominance(self):
        game = NormalFormGame.from_bimatrix(
            [[1, 1], [1, 0]], [[1, 1], [1, 1]]
        )
        result = iterated_weak_dominance(game)
        assert result.kept[0] == [0]

    def test_reduced_game_playable(self):
        result = iterated_strict_dominance(prisoners_dilemma())
        assert result.reduced.pure_nash_equilibria() == [(0, 0)]


class TestLearning:
    def test_fictitious_play_matching_pennies(self):
        result = fictitious_play(matching_pennies(), iterations=5000)
        np.testing.assert_allclose(result.empirical[0], [0.5, 0.5], atol=0.05)
        assert result.regret < 0.05

    def test_fictitious_play_pd_converges_to_defect(self):
        result = fictitious_play(prisoners_dilemma(), iterations=500)
        assert result.empirical[0][1] > 0.95

    def test_fictitious_play_random_tie_break(self):
        result = fictitious_play(
            matching_pennies(), iterations=2000, tie_break="random",
            rng=np.random.default_rng(0),
        )
        assert result.regret < 0.1

    def test_replicator_pd(self):
        result = replicator_dynamics(prisoners_dilemma(), iterations=5000)
        assert result.final[0][1] > 0.99  # defection takes over

    def test_replicator_requires_symmetric(self):
        with pytest.raises(ValueError):
            replicator_dynamics(battle_of_the_sexes())

    def test_replicator_interior_fixed_point_rps(self):
        result = replicator_dynamics(
            roshambo(), initial=[1 / 3, 1 / 3, 1 / 3], iterations=100
        )
        np.testing.assert_allclose(result.final[0], [1 / 3] * 3, atol=1e-6)

    def test_multi_population_on_pd(self):
        result = multi_population_replicator(
            prisoners_dilemma(), iterations=5000
        )
        assert result.final[0][1] > 0.99
        assert result.final[1][1] > 0.99

    def test_multi_population_simplex_preserved(self):
        result = multi_population_replicator(chicken(), iterations=200)
        for vec in result.final:
            assert abs(vec.sum() - 1.0) < 1e-9
            assert np.all(vec >= 0)


class TestCorrelated:
    def test_nash_is_correlated(self):
        game = prisoners_dilemma()
        dist = {(1, 1): 1.0}
        assert is_correlated_equilibrium(game, dist)

    def test_non_equilibrium_distribution_rejected(self):
        game = prisoners_dilemma()
        assert not is_correlated_equilibrium(game, {(0, 0): 1.0})

    def test_lp_produces_valid_correlated_equilibrium(self):
        for game in (chicken(), battle_of_the_sexes()):
            dist = correlated_equilibrium(game)
            assert is_correlated_equilibrium(game, dist, tol=1e-6)

    def test_welfare_objective_beats_mixed_nash_in_chicken(self):
        game = chicken()
        dist = correlated_equilibrium(game, objective="welfare")
        welfare = sum(
            p * game.payoff_vector(profile).sum() for profile, p in dist.items()
        )
        # The symmetric mixed Nash of this chicken gives total welfare < 0;
        # the correlated optimum avoids the crash outcome entirely.
        assert welfare >= -1e-9
        assert dist.get((1, 1), 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_custom_objective_validation(self):
        with pytest.raises(ValueError):
            correlated_equilibrium(chicken(), objective="custom", weights=None)

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            correlated_equilibrium(chicken(), objective="entropy")
