"""Tests for automata, the step-counting VM, and the strategy zoo."""

import pytest

from repro.games.classics import prisoners_dilemma
from repro.games.repeated import RepeatedGame
from repro.machines.automata import (
    FiniteAutomaton,
    all_one_state_automata,
    all_two_state_automata,
    constant_automaton,
    counting_defector,
    grim_trigger_automaton,
    tit_for_tat_automaton,
)
from repro.machines.strategies import (
    AlternatorStrategy,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    strategy_zoo,
)
from repro.machines.vm import (
    Program,
    ProgramBuilder,
    VMError,
    constant_program,
    miller_rabin_cost_model,
    run_program,
    trial_division_program,
)


class TestAutomata:
    def test_tft_automaton_mirrors(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=4)
        result = game.play(tit_for_tat_automaton(), constant_automaton(1))
        assert result.actions == [(0, 1), (1, 1), (1, 1), (1, 1)]

    def test_tft_automaton_cooperates_with_itself(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=5)
        result = game.play(tit_for_tat_automaton(), tit_for_tat_automaton())
        assert all(a == (0, 0) for a in result.actions)

    def test_grim_automaton_triggers_forever(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=4)
        alternator = AlternatorStrategy()
        result = game.play(grim_trigger_automaton(), alternator)
        # Alternator defects in round 2; grim defects from round 3 on.
        assert [a[0] for a in result.actions] == [0, 0, 1, 1]

    def test_counting_defector_behaviour(self):
        n = 5
        game = RepeatedGame(prisoners_dilemma(), rounds=n)
        result = game.play(counting_defector(n), tit_for_tat_automaton())
        own = [a[0] for a in result.actions]
        assert own[:-1] == [0] * (n - 1)  # tit-for-tat play until the end
        assert own[-1] == 1  # defect at the last round

    def test_counting_defector_state_count(self):
        assert counting_defector(5).n_states == 2 * 4 + 1

    def test_counting_defector_mirrors_defection(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=4)
        result = game.play(counting_defector(4), constant_automaton(1))
        own = [a[0] for a in result.actions]
        assert own == [0, 1, 1, 1]  # mirror (TFT) then final defect

    def test_validation(self):
        with pytest.raises(ValueError):
            FiniteAutomaton("bad", 2, (0, 2), {(0, 0): 0})
        with pytest.raises(ValueError):
            FiniteAutomaton("bad", 2, (0,), {(0, 0): 0})  # missing (0,1)
        with pytest.raises(ValueError):
            counting_defector(1)

    def test_reset_restores_initial_state(self):
        auto = grim_trigger_automaton()
        auto.act([])
        auto.act([1])  # trigger
        assert auto.act([1]) == 1
        auto.reset()
        assert auto.act([]) == 0

    def test_enumerations(self):
        assert len(all_one_state_automata()) == 2
        autos = list(all_two_state_automata())
        assert len(autos) == 2**2 * 4**2 * 2
        # Spot-check one is behaviourally tit-for-tat.
        game = RepeatedGame(prisoners_dilemma(), rounds=6)
        reference = game.play(
            tit_for_tat_automaton(), AlternatorStrategy()
        ).actions
        assert any(
            game.play(a.clone(), AlternatorStrategy()).actions == reference
            for a in autos
        )


class TestVM:
    def test_constant_program(self):
        result = run_program(constant_program(7))
        assert result.output == 7
        assert result.steps == 2
        assert result.halted

    def test_trial_division_correct(self):
        program = trial_division_program()
        primes = {2, 3, 5, 7, 11, 13, 97, 101}
        for x in range(2, 110):
            result = run_program(program, {"x": x})
            assert result.output == (1 if _is_prime(x) else 0), x
        del primes

    def test_trial_division_handles_small_inputs(self):
        program = trial_division_program()
        assert run_program(program, {"x": 0}).output == 0
        assert run_program(program, {"x": 1}).output == 0

    def test_step_count_grows(self):
        program = trial_division_program()
        small = run_program(program, {"x": 101}).steps
        large = run_program(program, {"x": 10_007}).steps
        assert large > small

    def test_max_steps_cutoff(self):
        b = ProgramBuilder("loop")
        b.label("top")
        b.emit("JMP", "top")
        program = b.build()
        result = run_program(program, max_steps=100)
        assert not result.halted
        assert result.steps == 100

    def test_division_by_zero(self):
        b = ProgramBuilder()
        b.emit("LI", "a", 1)
        b.emit("DIV", "r", "a", "zero")
        with pytest.raises(VMError):
            run_program(b.build())

    def test_unknown_opcode(self):
        b = ProgramBuilder()
        b.emit("FLY", "r")
        with pytest.raises(VMError):
            run_program(b.build())

    def test_unknown_label(self):
        b = ProgramBuilder()
        b.emit("JMP", "nowhere")
        with pytest.raises(VMError):
            run_program(b.build())

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(VMError):
            b.label("x")

    def test_miller_rabin_cost_model_correct(self):
        for x in (2, 97, 91, 561, 7919, 10**12 + 39):
            answer, cost = miller_rabin_cost_model(x)
            assert answer == _is_prime(x), x
            assert cost > 0

    def test_miller_rabin_cost_scales_with_bits(self):
        _, small = miller_rabin_cost_model(97)
        _, large = miller_rabin_cost_model(10**15 + 37)
        assert large > small


class TestStrategyZoo:
    def test_zoo_unique_names(self):
        zoo = strategy_zoo()
        names = [s.name for s in zoo]
        assert len(set(names)) == len(names)

    def test_tft_first_move_cooperates(self):
        assert TitForTat().act([]) == 0

    def test_suspicious_tft_first_move_defects(self):
        assert SuspiciousTitForTat().act([]) == 1

    def test_tf2t_needs_two_defections(self):
        s = TitForTwoTats()
        assert s.act([1]) == 0
        assert s.act([0, 1, 1]) == 1

    def test_pavlov_win_stay_lose_shift(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=4)
        result = game.play(Pavlov(), AlwaysDefect())
        # Pavlov: C (loses), shifts to D, opponent still D: shifts to C...
        assert [a[0] for a in result.actions] == [0, 1, 0, 1]

    def test_random_strategy_seeded(self):
        a = RandomStrategy(0.5, seed=3)
        b = RandomStrategy(0.5, seed=3)
        history = list(range(0))
        seq_a = [a.act(history) for _ in range(20)]
        seq_b = [b.act(history) for _ in range(20)]
        assert seq_a == seq_b

    def test_random_strategy_reset_replays(self):
        s = RandomStrategy(0.5, seed=9)
        first = [s.act([]) for _ in range(10)]
        s.reset()
        assert [s.act([]) for _ in range(10)] == first

    def test_random_probability_validated(self):
        with pytest.raises(ValueError):
            RandomStrategy(1.5)

    def test_grim_vs_always_cooperate(self):
        game = RepeatedGame(prisoners_dilemma(), rounds=5)
        result = game.play(GrimTrigger(), AlwaysCooperate())
        assert all(a == (0, 0) for a in result.actions)


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


class TestModexpAndFermat:
    def test_modexp_matches_pow(self):
        from repro.machines.vm import modexp_program

        program = modexp_program()
        for b, e, m in [(7, 560, 561), (2, 10, 1000), (5, 0, 7), (3, 1, 2)]:
            result = run_program(program, {"b": b, "e": e, "m": m})
            assert result.output == pow(b, e, m), (b, e, m)

    def test_fermat_agrees_with_reference(self):
        from repro.machines.vm import fermat_primality_program

        program = fermat_primality_program()
        for x in (0, 1, 2, 3, 4, 5, 9, 97, 91, 561, 65_521, 65_341):
            result = run_program(program, {"x": x})
            truth, _cost = miller_rabin_cost_model(x)
            assert result.output == int(truth), x

    def test_fermat_is_polynomial_trial_division_is_not(self):
        from repro.machines.vm import fermat_primality_program

        fermat = fermat_primality_program()
        trial = trial_division_program()
        x = 268_435_399  # 28-bit prime
        fermat_steps = run_program(fermat, {"x": x}).steps
        trial_steps = run_program(trial, {"x": x}).steps
        assert fermat_steps * 10 < trial_steps

    def test_fermat_in_primality_game(self):
        from repro.core.computational import (
            computational_nash_equilibria,
            primality_machine_game,
        )

        # With a moderate step price, the *polynomial* tester stays the
        # equilibrium on inputs where trial division is already priced out.
        game = primality_machine_game(
            [65_521, 65_341, 64_969, 64_987], step_price=0.005
        )
        eqs = computational_nash_equilibria(game)
        names = {profile[0].name for profile in eqs}
        assert names <= {"fermat_vm", "miller_rabin"}
        assert names
