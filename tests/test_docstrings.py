"""D1-style docstring enforcement for the documented packages.

CI also runs ``ruff check --select D1`` over the same packages; this
AST-based twin keeps the guarantee inside the tier-1 suite, where it runs
without any linter installed.  Scope matches the docs site: every public
module, class, and function in ``repro.core``, ``repro.solvers``,
``repro.experiments``, ``repro.econ``, ``repro.service``, and
``repro.cluster`` must carry a docstring.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
PACKAGES = [
    "cluster",
    "core",
    "solvers",
    "experiments",
    "econ",
    "obs",
    "service",
    "verify",
]


def _public_defs_missing_docstrings(path: pathlib.Path):
    """Yield '<file>:<line> <name>' for each undocumented public definition."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    if not ast.get_docstring(tree):
        yield f"{path}:1 <module>"
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        if not ast.get_docstring(node):
            yield f"{path}:{node.lineno} {node.name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_api_is_documented(package):
    missing = []
    for path in sorted((SRC / package).glob("*.py")):
        missing.extend(_public_defs_missing_docstrings(path))
    assert not missing, "undocumented public definitions:\n" + "\n".join(missing)
