"""The scrip engines agree exactly, and the exact chain matches MC.

The vectorized batch engine, the single-economy fast path, and the
``_reference_run`` loop oracle share one randomness protocol, so on any
population of the standard agent types they must produce *identical*
floats — utilities included — under the same seed.  Hypothesis drives
random mixed populations through all three.  A second set of tests pins
the analytic Markov-chain utility (:mod:`repro.econ.markov`) against
long-horizon Monte Carlo on small grids.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.econ.markov import analytic_threshold_utility
from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripSystem,
    ThresholdAgent,
    best_response_sweep,
    best_response_threshold,
    run_batch,
)


@st.composite
def mixed_populations(draw, min_agents=2, max_agents=6):
    """A random population mixing threshold agents, hoarders, altruists."""
    n = draw(st.integers(min_agents, max_agents))
    agents = []
    for _ in range(n):
        kind = draw(st.sampled_from(["threshold", "hoarder", "altruist"]))
        if kind == "threshold":
            agents.append(ThresholdAgent(draw(st.integers(0, 6))))
        elif kind == "hoarder":
            agents.append(Hoarder())
        else:
            agents.append(Altruist())
    return agents


@st.composite
def economies(draw):
    """A random economy: population plus pricing/discount parameters."""
    agents = draw(mixed_populations())
    return ScripSystem(
        agents,
        benefit=1.0,
        cost=draw(st.sampled_from([0.2, 0.5, 0.9])),
        initial_scrip=draw(st.integers(0, 4)),
        discount=draw(st.sampled_from([1.0, 0.999, 0.9])),
    )


def assert_results_identical(a, b):
    """Every field of two simulation results matches exactly."""
    np.testing.assert_array_equal(a.final_scrip, b.final_scrip)
    np.testing.assert_array_equal(a.utilities, b.utilities)
    assert a.requests_made == b.requests_made
    assert a.requests_satisfied == b.requests_satisfied
    assert a.served_for_free == b.served_for_free
    assert a.rounds == b.rounds


@settings(max_examples=50, deadline=None)
@given(economies(), st.integers(0, 120), st.integers(0, 2**32 - 1))
def test_fast_path_matches_reference(system, rounds, seed):
    assert_results_identical(
        system.run(rounds, seed=seed),
        system._reference_run(rounds, seed=seed),
    )


@settings(max_examples=30, deadline=None)
@given(economies(), st.integers(1, 80), st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=4))
def test_run_batch_matches_per_economy_runs(system, rounds, seeds):
    batch = system.run_batch(rounds, seeds)
    for b, seed in enumerate(seeds):
        assert_results_identical(batch.result(b), system.run(rounds, seed=seed))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(mixed_populations(min_agents=3, max_agents=3), min_size=2, max_size=4),
    st.integers(1, 60),
    st.integers(0, 2**16),
)
def test_heterogeneous_batch_matches_singles(populations, rounds, base_seed):
    seeds = [base_seed + i for i in range(len(populations))]
    batch = run_batch(populations, rounds, seeds, cost=0.4)
    for b, agents in enumerate(populations):
        single = ScripSystem(agents, cost=0.4).run(rounds, seed=seeds[b])
        assert_results_identical(batch.result(b), single)


class TestBestResponseSeeding:
    def test_candidates_get_distinct_seeds(self):
        sweep = best_response_sweep([3], [1, 2, 4], n_agents=6, rounds=50)
        assert len(set(sweep.seeds.ravel().tolist())) == 3

    def test_common_random_numbers_share_one_stream(self):
        sweep = best_response_sweep(
            [3], [1, 2, 4], n_agents=6, rounds=50, common_random_numbers=True
        )
        assert len(set(sweep.seeds.ravel().tolist())) == 1

    def test_replications_are_independent_streams(self):
        sweep = best_response_sweep(
            [3], [2], n_agents=6, rounds=50, replications=4
        )
        assert len(set(sweep.seeds.ravel().tolist())) == 4

    def test_best_response_threshold_matches_sweep(self):
        best, utilities = best_response_threshold(
            4, [1, 4, 8], n_agents=8, rounds=2000, seed=3
        )
        sweep = best_response_sweep([4], [1, 4, 8], n_agents=8, rounds=2000, seed=3)
        assert utilities == sweep.utility_map(4)
        assert best == sweep.best_response(4)

    def test_sweep_cell_reproduces_direct_simulation(self):
        sweep = best_response_sweep(
            [3], [5], n_agents=6, rounds=800, cost=0.4, seed=11
        )
        agents = [ThresholdAgent(5)] + [ThresholdAgent(3) for _ in range(5)]
        direct = ScripSystem(agents, cost=0.4).run(
            800, seed=int(sweep.seeds[0, 0, 0])
        )
        assert float(sweep.utilities[0, 0, 0]) == float(direct.utilities[0])


class TestMarkovCrossValidation:
    GRID = [(3, 2, 1), (4, 3, 2), (4, 4, 2), (5, 3, 2), (4, 2, 3)]

    @pytest.mark.parametrize("n,threshold,initial", GRID)
    def test_analytic_matches_monte_carlo(self, n, threshold, initial):
        analysis = analytic_threshold_utility(
            n, threshold, benefit=1.0, cost=0.2, initial_scrip=initial
        )
        mc = ScripSystem(
            [ThresholdAgent(threshold) for _ in range(n)],
            benefit=1.0,
            cost=0.2,
            initial_scrip=initial,
        ).run(150_000, seed=5)
        mc_utility = mc.utilities.mean() / mc.rounds
        assert analysis.expected_utility == pytest.approx(mc_utility, abs=5e-3)
        assert analysis.satisfaction_rate == pytest.approx(
            mc.satisfaction_rate, abs=5e-3
        )

    def test_stationary_is_a_distribution(self):
        analysis = analytic_threshold_utility(4, 3, initial_scrip=2)
        assert analysis.stationary.sum() == pytest.approx(1.0)
        assert analysis.stationary.min() >= 0.0
        assert analysis.scrip_distribution.sum() == pytest.approx(1.0)

    def test_frozen_economy_is_the_crash(self):
        # Everyone starts at/above threshold: nobody ever volunteers.
        analysis = analytic_threshold_utility(4, 2, initial_scrip=3)
        assert analysis.frozen
        assert analysis.n_states == 1
        assert analysis.expected_utility == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_threshold_utility(1, 2)
        with pytest.raises(ValueError):
            analytic_threshold_utility(3, 2, benefit=0.1, cost=0.2)
        with pytest.raises(ValueError):
            analytic_threshold_utility(3, -1)
