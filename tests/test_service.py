"""Service-layer tests: content-addressed store, jobs, and cache hooks.

Covers the ISSUE-4 acceptance criteria that don't need a live HTTP
server: store key semantics and atomicity under concurrent writers,
runner cache hits skipping the executor, byte-identical warm replays,
single-flight dedup of concurrent identical submissions, and the
>= 10x warm-over-cold speedup of a cached sweep re-run.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.registry import scenario, unregister
from repro.experiments.results import ExperimentResult, ResultSet
from repro.experiments.runner import run_experiments
from repro.service.jobs import JobManager, SweepRequest
from repro.service.store import ResultStore, canonical_json, result_key


# ---------------------------------------------------------------------------
# Test scenarios (registered per-test via fixtures, never left behind)
# ---------------------------------------------------------------------------


@pytest.fixture
def counting_scenario():
    """Register a scenario that counts its executions; yields the counter."""
    calls = []
    lock = threading.Lock()

    @scenario(family="_svc_test", name="_svc_counting", params={"x": [1, 2, 3]})
    def _svc_counting(x: int, seed: int):
        """Counted toy scenario for dedup tests."""
        with lock:
            calls.append((x, seed))
        return {"y": x * x, "seed_mod": seed % 97, "gains": [float(x), 2.0]}

    try:
        yield calls
    finally:
        unregister("_svc_counting")


@pytest.fixture
def slow_scenario():
    """Register a deliberately slow scenario (for speedup/dedup timing)."""

    @scenario(family="_svc_test", name="_svc_slow", params={"x": [1, 2, 3, 4]})
    def _svc_slow(x: int, seed: int):
        """Sleepy toy scenario standing in for a heavy sweep case."""
        time.sleep(0.03)
        return {"y": x + seed % 7}

    try:
        yield
    finally:
        unregister("_svc_slow")


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def test_result_key_is_order_independent_and_version_sensitive():
    a = result_key("s", {"a": 1, "b": 2}, 0, 0, code_version="v")
    b = result_key("s", {"b": 2, "a": 1}, 0, 0, code_version="v")
    assert a == b
    assert len(a) == 64 and set(a) <= set("0123456789abcdef")
    assert result_key("s", {"a": 1, "b": 2}, 0, 0, code_version="w") != a
    assert result_key("s", {"a": 1, "b": 2}, 1, 0, code_version="v") != a
    assert result_key("s", {"a": 1, "b": 2}, 0, 1, code_version="v") != a
    assert result_key("t", {"a": 1, "b": 2}, 0, 0, code_version="v") != a


def test_store_rejects_malformed_keys(tmp_path):
    store = ResultStore(str(tmp_path))
    with pytest.raises(ValueError):
        store.path_for("../../etc/passwd")
    with pytest.raises(ValueError):
        store.path_for("")


# ---------------------------------------------------------------------------
# Store basics
# ---------------------------------------------------------------------------


def test_store_round_trip_and_stats(tmp_path):
    store = ResultStore(str(tmp_path))
    key = store.key_for("s", {"x": 1}, 0)
    assert store.get(key) is None
    store.put(key, {"v": [1, 2, 3]})
    assert store.get(key) == {"v": [1, 2, 3]}
    stats = store.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
    assert stats["disk_entries"] == 1
    assert list(store.keys()) == [key]


def test_store_survives_process_restart(tmp_path):
    first = ResultStore(str(tmp_path))
    key = first.key_for("s", {"x": 1}, 0)
    first.put(key, {"v": 7})
    # A brand-new store over the same directory (fresh LRU) still hits.
    second = ResultStore(str(tmp_path))
    assert second.get(key) == {"v": 7}
    assert second.stats()["hits"] == 1


def test_store_treats_corrupt_blob_as_miss(tmp_path):
    """A truncated/garbage blob file degrades to a recompute, not a crash."""
    store = ResultStore(str(tmp_path))
    key = store.key_for("s", {"x": 1}, 0)
    store.put(key, {"v": 7})
    with open(store.path_for(key), "w", encoding="utf-8") as handle:
        handle.write("garbage{")
    fresh = ResultStore(str(tmp_path))  # fresh LRU, must read the file
    assert fresh.get(key) is None
    assert fresh.stats()["misses"] == 1
    fresh.put(key, {"v": 8})  # and the cell is repairable in place
    assert fresh.get(key) == {"v": 8}


def test_store_blobs_are_isolated_from_caller_mutation(tmp_path):
    """Mutating a returned (or stored) blob never corrupts later reads."""
    store = ResultStore(str(tmp_path))
    key = store.key_for("s", {"x": 1}, 0)
    original = {"gains": [1.0, 2.0]}
    store.put(key, original)
    original["gains"].append("CORRUPTED-AT-PUT")
    first = store.get(key)
    assert first == {"gains": [1.0, 2.0]}
    first["gains"].append("CORRUPTED-AT-GET")
    assert store.get(key) == {"gains": [1.0, 2.0]}


def test_store_lru_eviction_falls_back_to_disk(tmp_path):
    store = ResultStore(str(tmp_path), max_memory_entries=2)
    keys = [store.key_for("s", {"x": i}, 0) for i in range(5)]
    for i, key in enumerate(keys):
        store.put(key, {"i": i})
    assert store.stats()["memory_entries"] == 2
    # Evicted entries are still served (from disk) and re-promoted.
    for i, key in enumerate(keys):
        assert store.get(key) == {"i": i}


def test_store_get_bytes_is_verbatim_file_content(tmp_path):
    store = ResultStore(str(tmp_path))
    key = store.key_for("s", {"x": 1}, 0)
    store.put(key, {"b": 2, "a": 1})
    with open(store.path_for(key), "rb") as handle:
        assert store.get_bytes(key) == handle.read()
    assert store.get_bytes(key) == (canonical_json({"a": 1, "b": 2}) + "\n").encode()


def test_store_atomic_under_concurrent_writers(tmp_path):
    """Racing writers to one key never produce a torn/invalid blob."""
    store = ResultStore(str(tmp_path), max_memory_entries=0)
    key = store.key_for("s", {"x": 1}, 0)
    payloads = [{"writer": w, "fill": "z" * 4096} for w in range(8)]
    valid = [canonical_json(p) for p in payloads]
    stop = threading.Event()
    bad = []

    def writer(payload):
        while not stop.is_set():
            store.put(key, payload)

    def reader():
        while not stop.is_set():
            blob = store.get(key)
            if blob is None:
                continue
            if canonical_json(blob) not in valid:
                bad.append(blob)

    threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
    threads += [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert not bad
    # The final on-disk blob is exactly one writer's payload.
    final = json.loads(store.get_bytes(key))
    assert canonical_json(final) in valid


# ---------------------------------------------------------------------------
# Runner integration
# ---------------------------------------------------------------------------


def test_run_experiments_populates_and_consults_store(tmp_path, counting_scenario):
    store = ResultStore(str(tmp_path))
    cold = run_experiments(scenarios=["_svc_counting"], store=store)
    assert len(cold) == 3
    assert cold.cache_hits == 0 and cold.cache_misses == 3
    assert len(counting_scenario) == 3

    warm = run_experiments(scenarios=["_svc_counting"], store=store)
    assert warm.cache_hits == 3 and warm.cache_misses == 0
    assert len(counting_scenario) == 3  # nothing recomputed
    # Warm rows replay the cold rows exactly, elapsed included — as
    # equal *objects*, not just equal serializations (computed rows are
    # JSON-coerced at build time, so tuple-vs-list can't diverge).
    assert warm.to_json_obj() == cold.to_json_obj()
    assert list(warm) == list(cold)
    # And mutating a warm row cannot reach back into the store's cache.
    for r in warm:
        for value in r.metrics.values():
            if isinstance(value, list):
                value.append("CORRUPTED")
    again = run_experiments(scenarios=["_svc_counting"], store=store)
    assert again.to_json_obj() == cold.to_json_obj()
    # Hit counts surface in the wall-time table (scenario, cases, hits, ...).
    assert warm.timing_summary()[0][:3] == ["_svc_counting", 3, 3]
    assert cold.timing_summary()[0][:3] == ["_svc_counting", 3, 0]


def test_changed_inputs_miss_the_cache(tmp_path, counting_scenario):
    store = ResultStore(str(tmp_path))
    run_experiments(scenarios=["_svc_counting"], store=store)
    baseline = len(counting_scenario)
    # Different base seed -> different content address -> recompute.
    rerun = run_experiments(scenarios=["_svc_counting"], base_seed=1, store=store)
    assert rerun.cache_misses == 3
    assert len(counting_scenario) == baseline + 3


def test_replications_get_distinct_cache_cells(tmp_path, counting_scenario):
    store = ResultStore(str(tmp_path))
    cold = run_experiments(
        scenarios=["_svc_counting"], replications=2, store=store
    )
    assert cold.cache_misses == 6
    warm = run_experiments(
        scenarios=["_svc_counting"], replications=2, store=store
    )
    assert warm.cache_hits == 6
    assert warm.to_json_obj() == cold.to_json_obj()


def test_cached_fetch_is_byte_identical_to_cold_recompute(
    tmp_path, counting_scenario
):
    """The determinism contract: same inputs, same bytes, forever."""
    store_a = ResultStore(str(tmp_path / "a"))
    store_b = ResultStore(str(tmp_path / "b"))
    run_experiments(scenarios=["_svc_counting"], store=store_a)
    run_experiments(scenarios=["_svc_counting"], store=store_b)
    keys_a = sorted(store_a.keys())
    assert keys_a == sorted(store_b.keys())
    for key in keys_a:
        blob_a = store_a.get_bytes(key)
        blob_b = store_b.get_bytes(key)
        # Blobs agree on everything except the timing of the two runs.
        a, b = json.loads(blob_a), json.loads(blob_b)
        a.pop("elapsed"), b.pop("elapsed")
        assert canonical_json(a) == canonical_json(b)
    # And a warm fetch of an existing cell is *fully* byte-identical.
    fresh = ResultStore(str(tmp_path / "a"))
    for key in keys_a:
        assert fresh.get_bytes(key) == store_a.get_bytes(key)


def test_result_round_trip_preserves_everything():
    result = ExperimentResult(
        scenario="s",
        family="f",
        params={"x": 1},
        seed=123,
        metrics={"m": 2.5, "v": [1, 2]},
        elapsed=0.25,
        replication=3,
    )
    rebuilt = ExperimentResult.from_dict(result.to_dict())
    assert rebuilt == result
    assert not rebuilt.cached
    cached = ExperimentResult.from_dict(result.to_dict(), cached=True)
    assert cached == result  # cached flag is excluded from equality
    assert cached.cached

    rs = ResultSet([result])
    assert ResultSet.from_json_obj(rs.to_json_obj()).to_json_obj() == rs.to_json_obj()
    assert json.loads(rs.to_json(indent=2)) == rs.to_json_obj()


# ---------------------------------------------------------------------------
# Jobs: single-flight dedup and warm speedup
# ---------------------------------------------------------------------------


def test_single_flight_dedup_one_computation(tmp_path, slow_scenario, counting_scenario):
    """N concurrent identical submits -> one job, one computation."""
    manager = JobManager(store=ResultStore(str(tmp_path)))
    request = SweepRequest(scenarios=("_svc_slow", "_svc_counting"))
    n = 12
    with ThreadPoolExecutor(max_workers=n) as pool:
        jobs = list(pool.map(lambda _: manager.submit(request), range(n)))
    assert len({job.job_id for job in jobs}) == 1
    job = jobs[0]
    assert job.wait(timeout=30)
    assert job.status == "done"
    assert job.submissions == n
    assert manager.computations == 1
    # The counting scenario's 3 cases ran exactly once each.
    assert len(counting_scenario) == 3
    assert job.total_cases == 7 and job.completed_cases == 7


def test_distinct_requests_are_not_deduped(tmp_path, counting_scenario):
    manager = JobManager(store=ResultStore(str(tmp_path)))
    a = manager.submit(SweepRequest(scenarios=("_svc_counting",)))
    b = manager.submit(SweepRequest(scenarios=("_svc_counting",), base_seed=1))
    assert a.job_id != b.job_id
    assert a.wait(10) and b.wait(10)


def test_sequential_identical_submits_start_fresh_jobs_but_hit_cache(
    tmp_path, counting_scenario
):
    manager = JobManager(store=ResultStore(str(tmp_path)))
    request = SweepRequest(scenarios=("_svc_counting",))
    first = manager.submit(request)
    assert first.wait(10) and first.status == "done"
    second = manager.submit(request)
    assert second.wait(10) and second.status == "done"
    assert second.job_id != first.job_id  # finished jobs leave the flight table
    assert second.cache_hits == 3 and second.cache_misses == 0
    assert len(counting_scenario) == 3


def test_warm_cache_rerun_is_10x_faster(tmp_path, slow_scenario):
    """ISSUE-4 acceptance: warm service re-run >= 10x faster than cold."""
    manager = JobManager(store=ResultStore(str(tmp_path)))
    request = SweepRequest(scenarios=("_svc_slow",))
    cold = manager.submit(request)
    assert cold.wait(30) and cold.status == "done"
    warm = manager.submit(request)
    assert warm.wait(30) and warm.status == "done"
    assert cold.cache_misses == 4 and warm.cache_hits == 4
    assert warm.elapsed * 10 <= cold.elapsed, (
        f"warm {warm.elapsed:.4f}s vs cold {cold.elapsed:.4f}s"
    )
    # Warm results replay the cold rows exactly.
    assert warm.results.to_json_obj() == cold.results.to_json_obj()


def test_job_error_is_reported_not_raised(tmp_path):
    manager = JobManager(store=ResultStore(str(tmp_path)))
    job = manager.submit(SweepRequest(scenarios=("_svc_no_such_scenario",)))
    assert job.wait(10)
    assert job.status == "error"
    assert "unknown scenario" in job.error
    # The manager survives and can run real work afterwards.
    ok = manager.submit(SweepRequest(smoke=True))
    assert ok.wait(60) and ok.status == "done"


def test_finished_job_retention_is_bounded(tmp_path, counting_scenario):
    manager = JobManager(store=ResultStore(str(tmp_path)), max_finished_jobs=2)
    jobs = []
    for seed in range(5):
        job = manager.submit(
            SweepRequest(scenarios=("_svc_counting",), base_seed=seed)
        )
        assert job.wait(10) and job.status == "done"
        jobs.append(job)
    assert manager.stats()["jobs"] == 2
    # The newest finished jobs survive; the oldest were evicted.
    manager.get(jobs[-1].job_id)
    manager.get(jobs[-2].job_id)
    with pytest.raises(KeyError):
        manager.get(jobs[0].job_id)


def test_concurrent_job_cap(tmp_path, slow_scenario):
    from repro.service.jobs import TooManyJobsError

    manager = JobManager(store=ResultStore(str(tmp_path)), max_concurrent_jobs=1)
    running = manager.submit(SweepRequest(scenarios=("_svc_slow",)))
    # A *distinct* request beyond the cap is rejected...
    with pytest.raises(TooManyJobsError):
        manager.submit(SweepRequest(scenarios=("_svc_slow",), base_seed=9))
    # ...but an identical one still single-flights onto the running job.
    joined = manager.submit(SweepRequest(scenarios=("_svc_slow",)))
    assert joined.job_id == running.job_id
    assert running.wait(30) and running.status == "done"
    # Capacity frees up once the job finishes.
    after = manager.submit(SweepRequest(scenarios=("_svc_slow",), base_seed=9))
    assert after.wait(30) and after.status == "done"


def test_fully_cached_job_never_starts_the_pool(tmp_path, counting_scenario):
    """The persistent executor is sized on post-cache misses, not cases."""
    cold = JobManager(store=ResultStore(str(tmp_path)))
    job = cold.submit(SweepRequest(scenarios=("_svc_counting",)))
    assert job.wait(10) and job.status == "done"
    warm = JobManager(store=ResultStore(str(tmp_path)), max_workers=4)
    job = warm.submit(SweepRequest(scenarios=("_svc_counting",)))
    assert job.wait(10) and job.status == "done"
    assert job.cache_hits == 3
    assert not warm.stats()["pool_started"]
    warm.shutdown()


def test_stats_disk_counter_tracks_puts(tmp_path):
    store = ResultStore(str(tmp_path))
    assert store.stats()["disk_entries"] == 0
    for i in range(3):
        store.put(store.key_for("s", {"x": i}, 0), {"i": i})
    assert store.stats()["disk_entries"] == 3
    # Overwriting an existing key does not inflate the count.
    store.put(store.key_for("s", {"x": 0}, 0), {"i": 99})
    assert store.stats()["disk_entries"] == 3


def test_cli_require_cached_demands_wait(capsys):
    from repro.service.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["submit", "--smoke", "--require-cached"])
    assert excinfo.value.code == 2
    assert "--require-cached needs --wait" in capsys.readouterr().err


def test_sweep_request_normalization():
    a = SweepRequest(scenarios=("b", "a")).signature()
    b = SweepRequest(scenarios=("a", "b")).signature()
    assert a == b
    with pytest.raises(ValueError):
        SweepRequest.from_json_obj({"bogus_field": 1})
    with pytest.raises(ValueError):
        SweepRequest.from_json_obj({"replications": 0})
    round_tripped = SweepRequest.from_json_obj(
        SweepRequest(families=("robustness",), replications=2).to_json_obj()
    )
    assert round_tripped == SweepRequest(families=("robustness",), replications=2)
