"""E5: cheap talk implements the mediator (same induced distribution).

The paper's definition: a cheap-talk game implements a mediated game if
it induces the same distribution over actions in the underlying game for
every type vector.  We run the SMPC-backed cheap-talk protocol for the
Byzantine-agreement mediator and a randomized mediator, compare induced
distributions, and exercise fault tolerance at the decoder's threshold.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.games.bayesian import BayesianGame
from repro.games.classics import byzantine_agreement_game, chicken
from repro.mediators.base import DeterministicMediator, MediatedGame, TableMediator
from repro.mediators.cheap_talk import CheapTalkSimulation, distributions_match
from repro.solvers.correlated import correlated_equilibrium


def byzantine_rows():
    n = 5
    game = byzantine_agreement_game(n)
    mediator = DeterministicMediator(
        game.num_types, lambda types: tuple([types[0]] * n)
    )
    mediated = MediatedGame(game, mediator)
    sim = CheapTalkSimulation(game, mediator, t=1, coin_resolution=4)
    rows = []
    for general_type in (0, 1):
        types = (general_type,) + (0,) * (n - 1)
        ideal = mediated.action_distribution(types)
        for corrupted, label in [(None, "honest"), ({4}, "1 corrupted")]:
            empirical = sim.sample_action_distribution(
                types, 30, corrupted=corrupted, seed=7
            )
            tv = 0.5 * sum(
                abs(empirical.get(k, 0) - ideal.get(k, 0))
                for k in set(empirical) | set(ideal)
            )
            rows.append((types, label, f"{tv:.3f}", tv <= 0.05))
    return rows


def test_bench_e5_byzantine_mediator_implementation(benchmark):
    rows = benchmark.pedantic(byzantine_rows, iterations=1, rounds=1)
    print_table(
        "E5a: cheap talk vs mediator, Byzantine agreement (n=5, t=1)",
        ["type profile", "faults", "total variation", "implements?"],
        rows,
    )
    assert all(row[3] for row in rows)


def correlated_rows():
    game = chicken()
    device = correlated_equilibrium(game, objective="welfare")
    bayesian = BayesianGame.from_normal_form(game)
    mediator = TableMediator({(0, 0): device})
    sim = CheapTalkSimulation(bayesian, mediator, t=0, coin_resolution=32)
    ideal = sim.quantized_distribution((0, 0))
    empirical = sim.sample_action_distribution((0, 0), 400, seed=11)
    rows = []
    for profile in sorted(set(ideal) | set(empirical)):
        rows.append(
            (
                profile,
                f"{ideal.get(profile, 0.0):.3f}",
                f"{empirical.get(profile, 0.0):.3f}",
            )
        )
    return rows, ideal, empirical


def test_bench_e5_randomized_correlated_device(benchmark):
    rows, ideal, empirical = benchmark.pedantic(
        correlated_rows, iterations=1, rounds=1
    )
    print_table(
        "E5b: randomized mediator (welfare-optimal correlated equilibrium of "
        "chicken) via cheap talk",
        ["recommended profile", "mediator prob", "cheap-talk prob"],
        rows,
    )
    assert distributions_match(empirical, ideal, 0.08)


def test_bench_e5_protocol_cost_scaling(benchmark):
    """Cost of one full SMPC cheap-talk execution (n=7, t=2)."""
    n = 7
    game = byzantine_agreement_game(n)
    mediator = DeterministicMediator(
        game.num_types, lambda types: tuple([types[0]] * n)
    )
    sim = CheapTalkSimulation(game, mediator, t=2, coin_resolution=4)
    rng = np.random.default_rng(0)

    def run():
        return sim.run_once(types=(1,) + (0,) * (n - 1), rng=rng)

    result = benchmark(run)
    assert result.played == (1,) * n
