"""E12: Gnutella free riding — the Adar–Huberman statistics.

The paper: "almost 70 percent of users share no files and nearly 50
percent of responses are from the top 1 percent of sharing hosts", and
with standard utilities no rational agent shares at all.  We reproduce
both: the dominance analysis of the standard-utility game, and the two
measured statistics from the calibrated heterogeneous-utility
population.
"""

import pytest

from benchmarks.conftest import print_table
from repro.econ.p2p import SharingPopulation, sharing_game_small
from repro.solvers.dominance import iterated_strict_dominance


def standard_utility_rows():
    rows = []
    for n in (2, 3, 4, 5):
        game = sharing_game_small(n)
        result = iterated_strict_dominance(game)
        survivors = result.kept
        equilibria = game.pure_nash_equilibria()
        rows.append(
            (
                n,
                all(kept == [0] for kept in survivors),
                equilibria == [(0,) * n],
            )
        )
    return rows


def test_bench_e12_standard_utilities_free_ride(benchmark):
    rows = benchmark.pedantic(standard_utility_rows, iterations=1, rounds=1)
    print_table(
        "E12a: file sharing with standard utilities",
        ["n users", "sharing strictly dominated", "unique NE = nobody shares"],
        rows,
    )
    for _n, dominated, unique in rows:
        assert dominated and unique


def population_rows(seeds):
    rows = []
    for seed in seeds:
        outcome = SharingPopulation(n_users=20_000, seed=seed).equilibrium()
        rows.append(
            (
                seed,
                f"{outcome.fraction_free_riders:.1%}",
                f"{outcome.top1pct_response_share:.1%}",
            )
        )
    return rows


def test_bench_e12_adar_huberman_statistics(benchmark):
    rows = benchmark.pedantic(
        population_rows, args=(list(range(5)),), iterations=1, rounds=1
    )
    print_table(
        "E12b: calibrated population vs Adar–Huberman measurements "
        "(paper: ~70% share nothing; top 1% serve ~50%)",
        ["seed", "share nothing", "top-1% response share"],
        rows,
    )
    free_riding = [float(r[1].rstrip("%")) / 100 for r in rows]
    top_share = [float(r[2].rstrip("%")) / 100 for r in rows]
    assert all(abs(f - 0.70) < 0.03 for f in free_riding)
    assert all(abs(s - 0.50) < 0.10 for s in top_share)
    assert abs(sum(top_share) / len(top_share) - 0.50) < 0.08


def test_bench_e12_population_scaling(benchmark):
    """Equilibrium computation is linear in population size."""

    def run():
        return SharingPopulation(n_users=100_000, seed=0).equilibrium()

    outcome = benchmark(run)
    assert outcome.n_users == 100_000
