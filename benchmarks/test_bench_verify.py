"""Bounded model checking — exhaustive verification as a benchmark.

Times the three canonical checker workloads: rediscovering the
``n <= 3t`` impossibility as a minimal counterexample (eig at (3, 1)),
certifying EIG at (4, 1) over *every* coalition, and certifying phase
king at (4, 1) under the ``search_for_disagreement`` placement family.
Timings land in ``benchmarks/out/BENCH_verify.json`` and are gated
against ``benchmarks/baselines/BENCH_verify.json`` by
``check_bench_regression.py`` (3x threshold).
"""

from benchmarks.conftest import print_table, timed_rows
from repro.verify import check_model


def test_bench_verify_eig_counterexample(benchmark):
    """(3,1): the checker finds, shrinks, and replays a violation."""
    result = timed_rows(
        benchmark,
        "verify",
        "eig_n3_t1_counterexample",
        lambda: check_model("eig", 3, 1, bound=2),
        workload="eig n=3 t=1 bound=2, family coalitions",
    )
    assert not result.ok
    trace = result.counterexample
    assert len(trace.events) == 1
    assert trace.replay_violates()


def test_bench_verify_eig_certify_all_coalitions(benchmark):
    """(4,1) all coalitions: EIG certified exhaustively (n > 3t)."""
    result = timed_rows(
        benchmark,
        "verify",
        "eig_n4_t1_certify_all",
        lambda: check_model("eig", 4, 1, bound=3, coalitions="all"),
        workload="eig n=4 t=1 bound=3, all coalitions",
    )
    assert result.ok
    assert not result.truncated


def test_bench_verify_phase_king_certify(benchmark):
    """(4,1) family placements: phase king certified to bound 3."""
    result = timed_rows(
        benchmark,
        "verify",
        "phase_king_n4_t1_certify",
        lambda: check_model("phase_king", 4, 1, bound=3),
        workload="phase_king n=4 t=1 bound=3, family coalitions",
    )
    assert result.ok
    assert not result.truncated
    print_table(
        "Bounded model checking (exhaustive, per config)",
        ["general", "faulty", "states", "violations"],
        [
            (c["general_value"], c["faulty"], c["states"], c["violations"])
            for c in result.configs
        ],
    )
