"""Asyncio HTTP/1.1 load generator for the service benchmarks.

Drives N concurrent keep-alive connections against one endpoint, with
optional request pipelining (each connection keeps up to ``depth``
requests in flight on its socket).  Generator and server share one
event loop when the caller runs them that way, which is exactly the
honest configuration for a single-core container: there is no second
core for the load generator anyway, and the loop interleaves both
sides cooperatively instead of ping-ponging the GIL between threads.

Latency is recorded per request from the moment its bytes are queued to
the socket until its response is fully read, so under pipelining the
percentiles include queueing delay — the number a real pipelined client
would observe, not an idealized service time.

Usage::

    report = asyncio.run(run_load("127.0.0.1", 8642, "/v1/health",
                                  connections=100,
                                  requests_per_connection=100,
                                  pipeline_depth=16))
    print(report.req_per_s, report.p99_ms)
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import List

from repro.obs.metrics import Histogram, _log_spaced_buckets

__all__ = ["LoadReport", "run_load"]

# Finer-than-default buckets (16 per decade ≈ 15% bounds ratio) so the
# interpolated percentiles are tight enough for benchmark gating.
_LATENCY_BUCKETS = _log_spaced_buckets(1e-5, 10.0, per_decade=16)


@dataclass
class LoadReport:
    """One load run's aggregate throughput and latency percentiles."""

    connections: int
    pipeline_depth: int
    total_requests: int
    seconds: float
    req_per_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    def workload(self, path: str) -> str:
        """Human-readable row description for the BENCH JSON."""
        return (
            f"{self.total_requests} GET {path} over {self.connections} "
            f"conns (depth {self.pipeline_depth}): "
            f"{self.req_per_s:,.0f} req/s, p50 {self.p50_ms:.2f} ms, "
            f"p95 {self.p95_ms:.2f} ms, p99 {self.p99_ms:.2f} ms"
        )


async def _drive_connection(
    host: str,
    port: int,
    request: bytes,
    n_requests: int,
    depth: int,
) -> List[float]:
    """One keep-alive connection: pipeline ``n_requests``, time each.

    Keeps up to ``depth`` requests outstanding; returns per-request
    latencies (send-enqueue → response fully read).  Asserts every
    response is a 200 — a load test that silently measures error pages
    is worse than one that fails.
    """
    reader, writer = await asyncio.open_connection(host, port)
    latencies: List[float] = []
    sent_at: List[float] = []
    sent = 0
    done = 0
    try:
        while done < n_requests:
            burst = min(depth - (sent - done), n_requests - sent)
            if burst > 0:
                writer.write(request * burst)
                now = time.perf_counter()
                sent_at.extend([now] * burst)
                sent += burst
                await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            status = int(header.split(b" ", 2)[1])
            assert status == 200, f"load target answered {status}"
            length = 0
            for line in header.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            if length:
                await reader.readexactly(length)
            latencies.append(time.perf_counter() - sent_at[done])
            done += 1
    finally:
        writer.close()
    return latencies


async def run_load(
    host: str,
    port: int,
    path: str,
    connections: int,
    requests_per_connection: int,
    pipeline_depth: int = 1,
) -> LoadReport:
    """Run the full load matrix and aggregate a :class:`LoadReport`."""
    request = (
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
    )
    start = time.perf_counter()
    per_connection = await asyncio.gather(
        *(
            _drive_connection(
                host, port, request, requests_per_connection, pipeline_depth
            )
            for _ in range(connections)
        )
    )
    seconds = time.perf_counter() - start
    histogram = Histogram(threading.Lock(), bounds=_LATENCY_BUCKETS)
    total = 0
    for conn in per_connection:
        for latency in conn:
            histogram.observe(latency)
            total += 1
    p50, p95, p99 = histogram.percentiles((0.50, 0.95, 0.99))
    return LoadReport(
        connections=connections,
        pipeline_depth=pipeline_depth,
        total_requests=total,
        seconds=seconds,
        req_per_s=total / seconds if seconds else 0.0,
        p50_ms=1000.0 * p50,
        p95_ms=1000.0 * p95,
        p99_ms=1000.0 * p99,
    )
