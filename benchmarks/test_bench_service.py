"""Service benchmarks: cold sweep latency and warm-cache request rates.

Everything runs against a real in-process ``ThreadingHTTPServer`` on an
ephemeral port, exactly as a remote client would see it.  Three rows go
to ``BENCH_service.json``:

* ``sweep_cold`` — submit+poll+fetch latency of the E1 robustness sweep
  against an empty cache (every case computed).
* ``sweep_warm`` — the same sweep re-run, fully content-addressed (warm
  best-of-3); the cold/warm pair is the ISSUE-4 speedup evidence.
* ``warm_fetch`` — per-request latency of ``GET /v1/results/<key>``
  over many sequential fetches (the workload string records req/s).

Timed by hand (``record_row``) rather than pytest-benchmark: the cold
row is only cold once per fresh cache directory.
"""

import time

import pytest

from conftest import print_table, record_row

from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

SWEEP = ["coordination_robustness"]


@pytest.fixture
def service(tmp_path):
    """A live server + client pair over a fresh cache directory."""
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, store
    finally:
        server.shutdown()
        server.server_close()
        server.manager.shutdown()


def _timed_sweep(client):
    """One submit+wait+fetch round trip; returns (seconds, job, results)."""
    start = time.perf_counter()
    job, results = client.run_sweep(scenarios=SWEEP)
    return time.perf_counter() - start, job, results


def test_bench_cold_vs_warm_sweep(service):
    """Record the cold/warm latency pair of the E1 sweep via the service."""
    client, _store = service
    cold_s, cold_job, cold_results = _timed_sweep(client)
    assert cold_job["cache_misses"] == len(cold_results) > 0

    warm_s = float("inf")
    for _ in range(3):
        s, warm_job, warm_results = _timed_sweep(client)
        warm_s = min(warm_s, s)
        assert warm_job["cache_hits"] == len(warm_results)
    assert warm_results.to_json_obj() == cold_results.to_json_obj()

    workload = f"{len(cold_results)} cases of {SWEEP[0]} over HTTP"
    record_row("service", "sweep_cold", cold_s, workload=workload)
    record_row("service", "sweep_warm", warm_s, workload=workload + ", cached")
    print_table(
        "service sweep latency (cold vs warm cache)",
        ["row", "ms", "speedup"],
        [
            ["sweep_cold", f"{1000 * cold_s:.1f}", ""],
            ["sweep_warm", f"{1000 * warm_s:.1f}", f"{cold_s / warm_s:.1f}x"],
        ],
    )


def test_bench_warm_fetch_rate(service):
    """Record per-request latency of content-addressed result fetches."""
    client, store = service
    client.run_sweep(scenarios=SWEEP)
    keys = list(store.keys())
    assert keys
    requests = 200
    start = time.perf_counter()
    for i in range(requests):
        client.fetch_bytes(keys[i % len(keys)])
    elapsed = time.perf_counter() - start
    per_request = elapsed / requests
    rate = requests / elapsed
    record_row(
        "service",
        "warm_fetch",
        per_request,
        workload=f"{requests} GET /v1/results/<key>, {rate:.0f} req/s",
    )
    print_table(
        "warm-cache fetch rate",
        ["requests", "total s", "ms/req", "req/s"],
        [[requests, f"{elapsed:.3f}", f"{1000 * per_request:.2f}", f"{rate:.0f}"]],
    )
