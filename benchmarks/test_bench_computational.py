"""E6, E7, E8: the three computational-equilibrium examples of Section 3.

E6 — primality game: the equilibrium machine flips from "compute the
answer" to "play safe" as the inputs grow, under per-step pricing.

E7 — finitely repeated prisoner's dilemma: tit-for-tat becomes an
equilibrium once memory is priced; the crossover length is swept.

E8 — roshambo with costly randomization: no computational Nash
equilibrium exists (exhaustive check over the machine space).
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.computational import (
    computational_nash_equilibria,
    frpd_machine_game,
    is_computational_nash,
    primality_machine_game,
    roshambo_machine_game,
)

# Mixed primes and composites per magnitude so blind guessing stays risky.
NUMBER_SETS = [
    ("8-bit", [251, 221, 193, 187], 0.01),
    ("16-bit", [65_521, 65_341, 64_969, 64_987], 0.01),
    ("28-bit", [268_435_399, 268_435_397, 268_435_459, 268_435_461], 0.01),
    ("40-bit", [10**12 + 39, 10**12 + 61, 10**12 + 1, 10**12 + 3], 0.03),
]


def e6_rows():
    rows = []
    for label, numbers, step_price in NUMBER_SETS:
        game = primality_machine_game(numbers, step_price=step_price)
        equilibria = computational_nash_equilibria(game)
        names = sorted({profile[0].name for profile in equilibria})
        rows.append((label, step_price, ", ".join(names)))
    return rows


def test_bench_e6_primality(benchmark):
    rows = benchmark.pedantic(e6_rows, iterations=1, rounds=1)
    print_table(
        "E6: primality game equilibrium machine vs input size",
        ["input size", "step price", "equilibrium machines"],
        rows,
    )
    # The equilibrium ladder: exact-but-superpolynomial trial division on
    # tiny inputs, the polynomial VM tester in the middle, play-safe once
    # even polynomial testing costs more than the $10 reward.
    assert "trial_division" in rows[0][2]
    assert any("fermat" in row[2] or "miller" in row[2] for row in rows[1:3])
    assert rows[-1][2] == "play_safe"


def e7_rows(memory_price, delta):
    rows = []
    for n_rounds in (2, 3, 5, 10, 20, 40):
        game = frpd_machine_game(n_rounds, delta, memory_price)
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        gain = 2 * delta**n_rounds
        extra_states = (2 * (n_rounds - 1) + 1) - 2
        cost = memory_price * extra_states
        rows.append(
            (
                n_rounds,
                f"{gain:.4f}",
                f"{cost:.4f}",
                is_computational_nash(game, [tft, tft]),
            )
        )
    return rows


def test_bench_e7_frpd(benchmark):
    memory_price, delta = 0.01, 0.9
    rows = benchmark.pedantic(
        e7_rows, args=(memory_price, delta), iterations=1, rounds=1
    )
    print_table(
        f"E7: FRPD with memory price {memory_price}, delta {delta} — "
        "tit-for-tat equilibrium vs game length",
        ["rounds N", "defection gain 2δ^N", "counter memory bill", "TFT is eq?"],
        rows,
    )
    values = [row[3] for row in rows]
    # Shape: not an equilibrium for short games, equilibrium for long ones,
    # with a single crossover.
    assert values[0] is False
    assert values[-1] is True
    assert values == sorted(values)  # monotone flip


def test_bench_e7_asymmetric_variant(benchmark):
    """Paper's asymmetric case: only player 0 is charged for memory."""

    def run():
        game = frpd_machine_game(
            n_rounds=12, delta=0.9, memory_price=0.05, charge_player=0
        )
        machines = game.machine_sets[0]
        tft = next(m for m in machines if m.name == "tit_for_tat")
        counter = next(
            m for m in machines if m.name.startswith("tft_defect")
        )
        return is_computational_nash(game, [tft, counter])

    assert benchmark(run)


def e8_rows():
    rows = []
    for det_cost, rand_cost in [(1.0, 2.0), (1.0, 1.0), (0.0, 0.0)]:
        game = roshambo_machine_game(det_cost, rand_cost)
        equilibria = computational_nash_equilibria(game)
        rows.append(
            (
                det_cost,
                rand_cost,
                len(equilibria),
                "none" if not equilibria else ", ".join(
                    f"({p[0].name},{p[1].name})" for p in equilibria
                ),
            )
        )
    return rows


def test_bench_e8_roshambo(benchmark):
    rows = benchmark.pedantic(e8_rows, iterations=1, rounds=1)
    print_table(
        "E8: roshambo machine game — computational Nash equilibria",
        ["deterministic cost", "randomization cost", "#equilibria", "equilibria"],
        rows,
    )
    by_costs = {(r[0], r[1]): r[2] for r in rows}
    assert by_costs[(1.0, 2.0)] == 0  # the paper's nonexistence
    assert by_costs[(1.0, 1.0)] >= 1  # equal costs restore equilibrium
