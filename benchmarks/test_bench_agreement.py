"""E4: Byzantine agreement — mediator vs cheap talk vs impossibility.

Reproduces the Section 2 claims: the mediator protocol is trivially
correct; EIG cheap talk satisfies the BA spec whenever n > 3t; for
n <= 3t the adversary search exhibits a concrete violation (the
executable face of "Byzantine agreement cannot be reached if t >= n/3").
"""

import pytest

from benchmarks.conftest import print_table
from repro.dist.agreement import (
    run_eig_agreement,
    run_mediator_agreement,
    run_phase_king_agreement,
)
from repro.dist.simulator import ByzantineRandomAdversary
from repro.experiments import run_experiments


def eig_grid():
    """The threshold table via the registry's ``eig_reliability`` scenario."""
    results = run_experiments(scenarios=["eig_reliability"])
    return [
        (
            r.params["n"],
            r.params["t"],
            r.metrics["regime"],
            f"{r.metrics['correct']}/{r.metrics['trials']}",
            "violation found"
            if r.metrics["violation_found"]
            else "none found",
        )
        for r in results
    ]


def test_bench_e4_eig_threshold(benchmark):
    rows = benchmark.pedantic(eig_grid, iterations=1, rounds=1)
    print_table(
        "E4: EIG cheap-talk Byzantine agreement",
        ["n", "t", "regime", "random-adversary correct", "adversarial search"],
        rows,
    )
    for n, t, regime, correct, search in rows:
        if regime == "n > 3t":
            assert correct.split("/")[0] == correct.split("/")[1]
            assert search == "none found"
        else:
            assert search == "violation found"


def test_bench_e4_mediator_latency(benchmark):
    """The mediator protocol: 3 rounds, immune to any player faults."""

    def run():
        adv = ByzantineRandomAdversary({1, 2, 3}, seed=0)
        return run_mediator_agreement(5, 1, adv)

    outcome = benchmark(run)
    assert outcome.correct
    assert outcome.rounds == 3


def test_bench_e4_eig_runtime_scaling(benchmark):
    """EIG is exponential-message but round-efficient: t+3 rounds."""

    def run():
        return run_eig_agreement(7, 2, 1, ByzantineRandomAdversary({5, 6}))

    outcome = benchmark(run)
    assert outcome.correct
    assert outcome.rounds == 2 + 3


def test_bench_e4_phase_king(benchmark):
    """Phase king: linear messages, needs n > 4t."""

    def run():
        return run_phase_king_agreement(
            5, 1, 1, ByzantineRandomAdversary({4}, seed=2)
        )

    outcome = benchmark(run)
    assert outcome.correct
