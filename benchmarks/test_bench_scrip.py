"""E11: scrip systems — threshold equilibria, hoarders, altruists.

Reproduces the Section 5 discussion of Kash–Friedman–Halpern: threshold
strategies support an equilibrium, and the two "standard irrational
behaviours" (hoarding, altruism) shift the welfare of threshold players
in opposite directions.

The best-response sweep runs every (base, candidate) economy in one
batched pass on the array engine; ``best_response_sweep_reference``
times the surviving per-round loop engine on a reduced workload so the
trajectory JSON keeps both engines honest.  A Markov-chain row
cross-checks Monte Carlo against the exact stationary utility.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table, record_row, timed_rows
from repro.econ.markov import analytic_threshold_utility
from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripSystem,
    ThresholdAgent,
    best_response_sweep,
    run_batch,
)
from repro.experiments import run_experiments

N_AGENTS = 12
ROUNDS = 15_000
COST = 0.6
DISCOUNT = 0.999


def best_response_rows(candidates):
    sweep = best_response_sweep(
        candidates, candidates,
        n_agents=N_AGENTS, rounds=ROUNDS,
        cost=COST, discount=DISCOUNT, seed=4,
    )
    rows = []
    for base in candidates:
        utilities = sweep.utility_map(base)
        best = sweep.best_response(base)
        gap = utilities[best] - utilities[base]
        rows.append(
            (
                base,
                best,
                f"{utilities[base]:.1f}",
                f"{utilities[best]:.1f}",
                f"{gap:.2f}",
            )
        )
    return rows


def test_bench_e11_threshold_best_responses(benchmark):
    candidates = [1, 2, 4, 8, 16]
    rows = timed_rows(
        benchmark, "scrip", "best_response_sweep", best_response_rows,
        candidates,
        workload=f"5x5 economies x {ROUNDS} rounds, n={N_AGENTS}, batched",
    )
    print_table(
        "E11a: empirical best-response thresholds "
        f"(n={N_AGENTS}, cost={COST}, discount={DISCOUNT})",
        ["all play k", "best response", "U(k)", "U(best)", "gap"],
        rows,
    )
    # Shape: an (approximate) equilibrium threshold exists — some k whose
    # best-response gap is within simulation noise.
    gaps = {row[0]: float(row[4]) for row in rows}
    assert min(gaps.values()) <= 3.0


def reference_engine_rows():
    """The pre-batching loop engine on a reduced sweep (trajectory row)."""
    candidates = [1, 2, 4, 8, 16]
    rounds = 2_000
    utilities = {}
    for candidate in candidates:
        agents = [ThresholdAgent(candidate)] + [
            ThresholdAgent(4) for _ in range(N_AGENTS - 1)
        ]
        system = ScripSystem(agents, cost=COST, discount=DISCOUNT)
        result = system._reference_run(rounds, seed=4)
        utilities[candidate] = float(result.utilities[0])
    return utilities


def test_bench_e11_reference_engine(benchmark):
    utilities = timed_rows(
        benchmark, "scrip", "best_response_sweep_reference",
        reference_engine_rows,
        workload="1x5 economies x 2000 rounds, loop engine",
    )
    assert set(utilities) == {1, 2, 4, 8, 16}


def population_rows():
    rounds = 25_000
    populations = [
        [ThresholdAgent(4) for _ in range(N_AGENTS)],
        [ThresholdAgent(4) for _ in range(N_AGENTS - 3)]
        + [Hoarder() for _ in range(3)],
        [ThresholdAgent(4) for _ in range(N_AGENTS - 3)]
        + [Altruist() for _ in range(3)],
    ]
    batch = run_batch(populations, rounds, [1, 1, 1], cost=0.2)
    healthy, drained, helped = (batch.result(b) for b in range(3))
    hoarder_share = (
        drained.final_scrip[N_AGENTS - 3:].sum() / drained.final_scrip.sum()
    )
    rows = [
        (
            "12 threshold-4",
            f"{healthy.mean_utility(range(N_AGENTS)):.1f}",
            f"{healthy.satisfaction_rate:.2%}",
            "-",
        ),
        (
            "9 threshold-4 + 3 hoarders",
            f"{drained.mean_utility(range(N_AGENTS - 3)):.1f}",
            f"{drained.satisfaction_rate:.2%}",
            f"hoarders hold {hoarder_share:.0%} of scrip",
        ),
        (
            "9 threshold-4 + 3 altruists",
            f"{helped.mean_utility(range(N_AGENTS - 3)):.1f}",
            f"{helped.satisfaction_rate:.2%}",
            f"{helped.served_for_free} jobs done for free",
        ),
    ]
    return rows, healthy, drained, helped


def test_bench_e11_hoarders_and_altruists(benchmark):
    rows, healthy, drained, helped = timed_rows(
        benchmark, "scrip", "population_mix", population_rows,
        workload="3 economies x 25000 rounds, one batch",
    )
    print_table(
        "E11b: population composition vs threshold agents' welfare",
        ["population", "mean utility (threshold agents)", "satisfaction", "note"],
        rows,
    )
    threshold_ids = range(N_AGENTS - 3)
    # Hoarders hurt the threshold agents; altruists help the requesters.
    assert drained.mean_utility(threshold_ids) < healthy.mean_utility(
        range(N_AGENTS)
    )
    assert helped.served_for_free > 0


def test_bench_e11_simulation_throughput(benchmark):
    agents = [ThresholdAgent(4) for _ in range(20)]
    system = ScripSystem(agents, cost=0.2)
    result = benchmark(lambda: system.run(5_000, seed=0))
    record_row(
        "scrip", "simulation_throughput", benchmark.stats.stats.min,
        workload="one economy, 5000 rounds, n=20",
    )
    assert result.requests_made > 0


def analytic_rows():
    """E11c: the exact chain against long-horizon Monte Carlo."""
    rows = []
    for n, threshold, initial in [(3, 2, 1), (4, 3, 2), (4, 2, 3)]:
        analysis = analytic_threshold_utility(
            n, threshold, benefit=1.0, cost=0.2, initial_scrip=initial
        )
        mc = ScripSystem(
            [ThresholdAgent(threshold) for _ in range(n)],
            cost=0.2,
            initial_scrip=initial,
        ).run(60_000, seed=9)
        mc_utility = mc.utilities.mean() / mc.rounds
        rows.append(
            (
                f"n={n} k={threshold} m={initial}",
                analysis.n_states,
                f"{analysis.expected_utility:+.5f}",
                f"{mc_utility:+.5f}",
                "frozen" if analysis.frozen else "circulating",
            )
        )
    return rows


def test_bench_e11_analytic_cross_check(benchmark):
    rows = timed_rows(
        benchmark, "scrip", "analytic_vs_mc", analytic_rows,
        workload="3 grids: exact chain + 60000-round MC",
    )
    print_table(
        "E11c: exact Markov-chain utility vs Monte Carlo",
        ["economy", "states", "analytic U/round", "MC U/round", "regime"],
        rows,
    )
    for _economy, _states, analytic, mc, regime in rows:
        if regime == "frozen":
            assert float(analytic) == 0.0 and float(mc) == 0.0
        else:
            assert abs(float(analytic) - float(mc)) < 0.01


def money_supply_rows():
    """E17's sweep via the registry's ``scrip_money_supply`` scenario."""
    results = run_experiments(scenarios=["scrip_money_supply"])
    return [
        (
            r.params["initial_scrip"],
            f"{r.metrics['satisfaction_rate']:.2f}",
            f"{r.metrics['total_welfare']:.0f}",
            "CRASH" if r.metrics["crashed"] else "ok",
        )
        for r in results
    ]


def test_bench_e17_money_supply_crash(benchmark):
    """E17: KFH 'crashes' — too much scrip and nobody ever works."""
    threshold = 4
    rows = timed_rows(
        benchmark, "scrip", "money_supply_sweep", money_supply_rows,
        workload="6 economies x 20000 rounds via registry",
    )
    print_table(
        f"E17: welfare vs money supply (threshold-{threshold} agents) — "
        "the KFH crash",
        ["initial scrip/agent", "satisfaction", "total welfare", "state"],
        rows,
    )
    welfare = [float(r[2]) for r in rows]
    states = [r[3] for r in rows]
    # Welfare rises while scrip is scarce...
    assert welfare[0] < welfare[1] < welfare[2]
    # ...then the system crashes once everyone starts above threshold.
    assert states[:3] == ["ok", "ok", "ok"]
    assert set(states[3:]) == {"CRASH"}
    assert all(w == 0.0 for w in welfare[3:])
