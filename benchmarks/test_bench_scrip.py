"""E11: scrip systems — threshold equilibria, hoarders, altruists.

Reproduces the Section 5 discussion of Kash–Friedman–Halpern: threshold
strategies support an equilibrium, and the two "standard irrational
behaviours" (hoarding, altruism) shift the welfare of threshold players
in opposite directions.
"""

import pytest

from benchmarks.conftest import print_table
from repro.econ.scrip import (
    Altruist,
    Hoarder,
    ScripSystem,
    ThresholdAgent,
    best_response_threshold,
)
from repro.experiments import run_experiments

N_AGENTS = 12
ROUNDS = 15_000
COST = 0.6
DISCOUNT = 0.999


def best_response_rows(candidates):
    rows = []
    for base in candidates:
        best, utilities = best_response_threshold(
            base, candidates,
            n_agents=N_AGENTS, rounds=ROUNDS,
            cost=COST, discount=DISCOUNT, seed=4,
        )
        gap = utilities[best] - utilities[base]
        rows.append(
            (
                base,
                best,
                f"{utilities[base]:.1f}",
                f"{utilities[best]:.1f}",
                f"{gap:.2f}",
            )
        )
    return rows


def test_bench_e11_threshold_best_responses(benchmark):
    candidates = [1, 2, 4, 8, 16]
    rows = benchmark.pedantic(
        best_response_rows, args=(candidates,), iterations=1, rounds=1
    )
    print_table(
        "E11a: empirical best-response thresholds "
        f"(n={N_AGENTS}, cost={COST}, discount={DISCOUNT})",
        ["all play k", "best response", "U(k)", "U(best)", "gap"],
        rows,
    )
    # Shape: an (approximate) equilibrium threshold exists — some k whose
    # best-response gap is within simulation noise.
    gaps = {row[0]: float(row[4]) for row in rows}
    assert min(gaps.values()) <= 3.0


def population_rows():
    rows = []
    rounds = 25_000
    base = [ThresholdAgent(4) for _ in range(N_AGENTS)]
    healthy = ScripSystem(base, cost=0.2).run(rounds, seed=1)
    rows.append(
        (
            "12 threshold-4",
            f"{healthy.mean_utility(range(N_AGENTS)):.1f}",
            f"{healthy.satisfaction_rate:.2%}",
            "-",
        )
    )
    with_hoarders = [ThresholdAgent(4) for _ in range(N_AGENTS - 3)] + [
        Hoarder() for _ in range(3)
    ]
    drained = ScripSystem(with_hoarders, cost=0.2).run(rounds, seed=1)
    hoarder_share = (
        drained.final_scrip[N_AGENTS - 3:].sum() / drained.final_scrip.sum()
    )
    rows.append(
        (
            "9 threshold-4 + 3 hoarders",
            f"{drained.mean_utility(range(N_AGENTS - 3)):.1f}",
            f"{drained.satisfaction_rate:.2%}",
            f"hoarders hold {hoarder_share:.0%} of scrip",
        )
    )
    with_altruists = [ThresholdAgent(4) for _ in range(N_AGENTS - 3)] + [
        Altruist() for _ in range(3)
    ]
    helped = ScripSystem(with_altruists, cost=0.2).run(rounds, seed=1)
    rows.append(
        (
            "9 threshold-4 + 3 altruists",
            f"{helped.mean_utility(range(N_AGENTS - 3)):.1f}",
            f"{helped.satisfaction_rate:.2%}",
            f"{helped.served_for_free} jobs done for free",
        )
    )
    return rows, healthy, drained, helped


def test_bench_e11_hoarders_and_altruists(benchmark):
    rows, healthy, drained, helped = benchmark.pedantic(
        population_rows, iterations=1, rounds=1
    )
    print_table(
        "E11b: population composition vs threshold agents' welfare",
        ["population", "mean utility (threshold agents)", "satisfaction", "note"],
        rows,
    )
    threshold_ids = range(N_AGENTS - 3)
    # Hoarders hurt the threshold agents; altruists help the requesters.
    assert drained.mean_utility(threshold_ids) < healthy.mean_utility(
        range(N_AGENTS)
    )
    assert helped.served_for_free > 0


def test_bench_e11_simulation_throughput(benchmark):
    agents = [ThresholdAgent(4) for _ in range(20)]
    system = ScripSystem(agents, cost=0.2)
    result = benchmark(lambda: system.run(5_000, seed=0))
    assert result.requests_made > 0


def money_supply_rows():
    """E17's sweep via the registry's ``scrip_money_supply`` scenario."""
    results = run_experiments(scenarios=["scrip_money_supply"])
    return [
        (
            r.params["initial_scrip"],
            f"{r.metrics['satisfaction_rate']:.2f}",
            f"{r.metrics['total_welfare']:.0f}",
            "CRASH" if r.metrics["crashed"] else "ok",
        )
        for r in results
    ]


def test_bench_e17_money_supply_crash(benchmark):
    """E17: KFH 'crashes' — too much scrip and nobody ever works."""
    threshold = 4
    rows = benchmark.pedantic(money_supply_rows, iterations=1, rounds=1)
    print_table(
        f"E17: welfare vs money supply (threshold-{threshold} agents) — "
        "the KFH crash",
        ["initial scrip/agent", "satisfaction", "total welfare", "state"],
        rows,
    )
    welfare = [float(r[2]) for r in rows]
    states = [r[3] for r in rows]
    # Welfare rises while scrip is scarce...
    assert welfare[0] < welfare[1] < welfare[2]
    # ...then the system crashes once everyone starts above threshold.
    assert states[:3] == ["ok", "ok", "ok"]
    assert set(states[3:]) == {"CRASH"}
    assert all(w == 0.0 for w in welfare[3:])
