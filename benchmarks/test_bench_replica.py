"""Replicated control plane benchmarks: failover and consensus overhead.

A real 3-replica fabric (in-process consensus threads, real asyncio
HTTP servers, ephemeral ports) with a real worker. Three rows go to
``BENCH_replica.json``:

* ``failover_new_leader`` — wall clock from hard-killing the leader to
  a surviving replica answering as leader (the fabric's write outage
  window on a crash);
* ``sweep_single_coordinator`` — a 6-case latency-bound sweep against a
  plain single-coordinator server (the pre-replication control plane);
* ``sweep_replicated`` — the same sweep against the 3-replica fabric;
  the workload string records the consensus overhead ratio.

Replicas run with ``fsync=False`` so the rows measure the *protocol*
(quorum round-trips, log-ordered application), not the container's
fsync latency — CI disks vary by an order of magnitude, consensus
message costs do not.  The latency-bound case (150 ms wait) mirrors
``test_bench_cluster.py``: worker wall clock dominates, so the
replicated overhead reflects what a real deployment sees, with the
per-command quorum cost visible but not inflated.
"""

import socket
import threading
import time

import numpy as np
import pytest

from conftest import print_table, record_row

from repro.cluster import ClusterCoordinator, run_worker_thread
from repro.cluster.replica import Replica
from repro.experiments.registry import scenario, unregister
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

CASE_WAIT_S = 0.15
N_CASES = 6
WORKLOAD = (
    f"{N_CASES} latency-bound cases ({1000 * CASE_WAIT_S:.0f} ms wait "
    f"each), 1 worker"
)


@pytest.fixture
def latency_scenario():
    """Register the latency-bound benchmark scenario for this test."""

    @scenario(
        family="_bench_replica",
        name="_bench_replica_case",
        params={"i": list(range(N_CASES))},
    )
    def _bench_replica_case(i: int, seed: int):
        """One latency-bound case: tiny deterministic compute + wait."""
        rng = np.random.default_rng(seed)
        matrix = rng.random((32, 32))
        time.sleep(CASE_WAIT_S)
        return {"i": i, "trace": float(np.trace(matrix @ matrix))}

    try:
        yield "_bench_replica_case"
    finally:
        unregister("_bench_replica_case")


def _free_port() -> int:
    """An OS-assigned free TCP port."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_fabric(tmp_path, store):
    """Three replicas under HTTP servers; returns (urls, replicas, servers)."""
    ports = [_free_port() for _ in range(3)]
    urls = [f"http://127.0.0.1:{p}" for p in ports]
    replicas, servers = [], []
    for i, port in enumerate(ports):
        replica = Replica(
            str(tmp_path / f"r{i}"),
            urls[i],
            [u for u in urls if u != urls[i]],
            store=store,
            lease_ttl=60.0,
            heartbeat_interval=0.04,
            election_timeout=(0.15, 0.3),
            fsync=False,
        ).start()
        server, _thread = start_async_server(
            host="127.0.0.1", port=port, store=store, coordinator=replica
        )
        replicas.append(replica)
        servers.append(server)
    return urls, replicas, servers


def _wait_single_leader(replicas, timeout=15.0):
    """Block until exactly one live replica leads; returns it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leaders = [
            r
            for r in replicas
            if not r._stop.is_set() and r.raft_status()["role"] == "leader"
        ]
        if len(leaders) == 1:
            return leaders[0]
        time.sleep(0.005)
    raise AssertionError("no single leader emerged")


def _timed_sweep(client, name, base_seed) -> float:
    """One cold cluster sweep end to end; returns wall-clock seconds."""
    start = time.perf_counter()
    job, results = client.run_sweep(
        scenarios=[name], base_seed=base_seed, executor="cluster", timeout=120
    )
    elapsed = time.perf_counter() - start
    assert len(results) == N_CASES
    return elapsed


def test_bench_replica_failover_and_overhead(tmp_path, latency_scenario):
    """Record failover time and replicated-vs-single sweep overhead."""
    stop = threading.Event()
    threads = []
    servers = []
    replicas = []

    # -- single-coordinator reference ----------------------------------
    single_store = ResultStore(str(tmp_path / "single-cache"))
    coordinator = ClusterCoordinator(store=single_store, lease_ttl=60.0)
    single_server, _thread = start_async_server(
        store=single_store, coordinator=coordinator
    )
    servers.append(single_server)
    host, port = single_server.server_address[:2]
    single_url = f"http://{host}:{port}"
    single_client = ServiceClient(single_url, timeout=120.0)

    # -- 3-replica fabric ----------------------------------------------
    fabric_store = ResultStore(str(tmp_path / "fabric-cache"))
    urls, replicas, fabric_servers = _start_fabric(tmp_path, fabric_store)
    servers.extend(fabric_servers)
    fabric_client = ServiceClient(",".join(urls), timeout=120.0)
    leader = _wait_single_leader(replicas)

    try:
        _w, t = run_worker_thread(
            ServiceClient(single_url), name="w-single", poll=0.005, stop=stop
        )
        threads.append(t)
        _w, t = run_worker_thread(
            ServiceClient(",".join(urls)), name="w-fabric", poll=0.005, stop=stop
        )
        threads.append(t)

        # Warm both paths (connections, code paths) on throwaway seeds.
        single_client.run_sweep(
            scenarios=[latency_scenario], base_seed=7,
            executor="cluster", timeout=120,
        )
        fabric_client.run_sweep(
            scenarios=[latency_scenario], base_seed=7,
            executor="cluster", timeout=120,
        )

        single_s = _timed_sweep(single_client, latency_scenario, 101)
        replicated_s = _timed_sweep(fabric_client, latency_scenario, 101)

        # -- failover: kill the leader, time the new election ----------
        index = replicas.index(leader)
        start = time.perf_counter()
        leader.hard_stop()
        fabric_servers[index].shutdown()
        survivor = _wait_single_leader(replicas)
        failover_s = time.perf_counter() - start
        assert survivor is not leader
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        for server in servers:
            server.shutdown()
            server.server_close()
        for replica in replicas:
            replica.close()

    overhead = replicated_s / single_s
    record_row("replica", "failover_new_leader", failover_s,
               workload="3 replicas, leader hard-killed, election 150-300 ms")
    record_row("replica", "sweep_single_coordinator", single_s,
               workload=WORKLOAD)
    record_row("replica", "sweep_replicated", replicated_s,
               workload=f"{WORKLOAD}, 3 replicas, {overhead:.2f}x vs single")
    print_table(
        "replicated control plane (3 replicas vs single coordinator)",
        ["row", "ms", "ratio"],
        [
            ["failover_new_leader", f"{1000 * failover_s:.1f}", ""],
            ["sweep_single_coordinator", f"{1000 * single_s:.1f}", ""],
            ["sweep_replicated", f"{1000 * replicated_s:.1f}",
             f"{overhead:.2f}x"],
        ],
    )
    # Consensus must not dominate a worker-bound sweep, and failover
    # must complete within a few election timeouts.
    assert overhead < 3.0, f"replication overhead {overhead:.2f}x"
    assert failover_s < 5.0, f"failover took {failover_s:.2f}s"
