"""E9 & E10: Section 4's awareness examples (Figures 1-3).

E9 — Figure 1 with an unaware A: Nash of the underlying game says
(across_A, down_B); every generalized Nash equilibrium of the game with
awareness has A playing down_A, matching the prose.

E10 — the full {Γm, ΓA, ΓB} structure with P(B unaware) = p: the
across_A equilibrium exists exactly for p <= 1/2 (with the documented
payoffs), and the canonical-representation theorem holds.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.awareness import canonical_representation
from repro.core.awareness_examples import (
    figure1_unaware_game,
    figure_gamma_games,
    virtual_move_game,
)
from repro.games.classics import figure1_game


def e9_rows():
    game = figure1_game()
    sp_profile, sp_values = game.backward_induction()
    gw = figure1_unaware_game()
    gnes = list(gw.all_pure_generalized_nash())
    rows = [
        (
            "standard Nash (subgame perfect)",
            max(sp_profile[0]["A"], key=sp_profile[0]["A"].get),
            max(sp_profile[1]["B"], key=sp_profile[1]["B"].get),
            tuple(sp_values),
        )
    ]
    for i, gne in enumerate(gnes):
        a_move = max(
            gne[(0, "gamma_b")]["A.3"], key=gne[(0, "gamma_b")]["A.3"].get
        )
        b_move = max(
            gne[(1, "modeler")]["B"], key=gne[(1, "modeler")]["B"].get
        )
        effective = gw.effective_profile("modeler", gne)
        payoffs = tuple(gw.games["modeler"].expected_payoffs(effective))
        rows.append((f"generalized Nash #{i + 1}", a_move, b_move, payoffs))
    return rows


def test_bench_e9_figure1(benchmark):
    rows = benchmark.pedantic(e9_rows, iterations=1, rounds=1)
    print_table(
        "E9: Figure 1 — Nash vs generalized Nash with unaware A",
        ["solution concept", "A plays", "B plays", "realized payoffs"],
        rows,
    )
    assert rows[0][1] == "across_A"  # standard Nash
    for row in rows[1:]:
        assert row[1] == "down_A"  # every GNE: unaware A goes down


def e10_rows(p_values):
    rows = []
    for p in p_values:
        gw = figure_gamma_games(p)
        gnes = list(gw.all_pure_generalized_nash())
        across = [
            gne
            for gne in gnes
            if gne[(0, "gamma_a")]["A.1"]["across_A"] > 0.5
        ]
        expected_across_value = 2 * (1 - p)
        rows.append(
            (
                p,
                len(gnes),
                len(across),
                f"{expected_across_value:.2f} vs 1.00",
            )
        )
    return rows


def test_bench_e10_gamma_a_b(benchmark):
    p_values = [0.0, 0.25, 0.4, 0.5, 0.6, 0.75, 1.0]
    rows = benchmark.pedantic(e10_rows, args=(p_values,), iterations=1, rounds=1)
    print_table(
        "E10: Figures 2-3 — GNE of {Γm, ΓA, ΓB} vs P(B unaware) = p "
        "(A across is optimal iff 2(1-p) >= 1)",
        ["p", "#pure GNE", "#GNE with A across", "across vs down value"],
        rows,
    )
    for p, _total, n_across, _values in rows:
        if p < 0.5:
            assert n_across >= 1
        if p > 0.5:
            assert n_across == 0


def test_bench_e10_canonical_equivalence(benchmark):
    """The canonical-representation theorem checked exhaustively."""

    def check():
        game = figure1_game()
        gw = canonical_representation(game)
        agreements = 0
        for a_move in ("across_A", "down_A"):
            for b_move in ("across_B", "down_B"):
                profile = {
                    (0, "G"): {"A": {m: float(m == a_move)
                                      for m in ("across_A", "down_A")}},
                    (1, "G"): {"B": {m: float(m == b_move)
                                      for m in ("across_B", "down_B")}},
                }
                behavioral = [profile[(0, "G")], profile[(1, "G")]]
                agreements += game.is_nash(behavioral) == (
                    gw.is_generalized_nash(profile)
                )
        return agreements

    assert benchmark(check) == 4


def test_bench_e10_virtual_moves(benchmark):
    """Awareness of unawareness: beliefs about the unknown move decide A."""

    def sweep():
        rows = []
        for believed in (0.25, 0.5, 0.9, 1.1, 1.5, 2.0):
            gw = virtual_move_game(believed_virtual_payoffs=(believed, 1.5))
            across = [
                gne
                for gne in gw.all_pure_generalized_nash()
                if gne[(0, "subjective")]["A.v"]["across_A"] == 1.0
            ]
            rows.append((believed, len(across)))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print_table(
        "E10b: virtual-move game — A goes across iff believed virtual payoff > 1",
        ["believed payoff to A", "#GNE with A across"],
        rows,
    )
    for believed, n_across in rows:
        if believed > 1.0:
            assert n_across >= 1
        if believed < 1.0:
            assert n_across == 0
