"""E15 & E16: extension experiments from the paper's related work/agenda.

E15 — rational secret sharing (Halpern–Teague 2004, §2 related work):
the naive one-round protocol is not an equilibrium in the tight case;
the randomized protocol's honesty equilibrium holds exactly up to
``alpha* = (u_all - u_none) / (u_alone - u_none)``.

E16 — asynchrony (§5 agenda): Ben-Or randomized consensus keeps
agreement and validity under random and starvation schedulers and under
crashes, while the naive wait-for-all protocol deadlocks on one crash.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.dist.async_sim import (
    AsyncNetwork,
    NaiveWaitAllNode,
    RandomScheduler,
    StarvationScheduler,
    run_ben_or,
)
from repro.mediators.rational_secret_sharing import (
    RSSUtilities,
    RandomizedRSSProtocol,
    honest_equilibrium_alpha_bound,
    naive_protocol_is_equilibrium,
)


def e15_rows():
    utilities = RSSUtilities(u_all=1.0, u_alone=2.0, u_none=0.0)
    bound = honest_equilibrium_alpha_bound(utilities)
    rows = []
    for alpha in (0.1, 0.3, 0.45, 0.5, 0.55, 0.7, 0.9):
        protocol = RandomizedRSSProtocol(
            n=3, t=2, alpha=alpha, utilities=utilities
        )
        mean_rounds = float(
            np.mean([protocol.run(seed=s).rounds for s in range(25)])
        )
        rows.append(
            (
                alpha,
                f"{protocol.expected_cheating_utility():.3f}",
                f"{protocol.expected_honest_utility():.3f}",
                protocol.honest_is_equilibrium(),
                f"{mean_rounds:.1f}",
            )
        )
    return rows, bound


def test_bench_e15_rational_secret_sharing(benchmark):
    rows, bound = benchmark.pedantic(e15_rows, iterations=1, rounds=1)
    print_table(
        "E15: randomized rational secret sharing (n=3, t=2; "
        f"theory: honesty is an equilibrium iff alpha <= {bound})",
        ["alpha", "EU(cheat)", "EU(honest)", "honest equilibrium?", "mean rounds"],
        rows,
    )
    assert not naive_protocol_is_equilibrium(3, 2)
    for alpha, _c, _h, is_eq, _r in rows:
        assert is_eq == (alpha <= bound + 1e-12)


def e16_rows():
    rows = []
    scenarios = [
        ("random schedule, no faults", RandomScheduler(0), {}),
        ("random schedule, 2 crashes", RandomScheduler(1), {0: 15, 4: 0}),
        ("starve node 3", StarvationScheduler(3, seed=2), {}),
        ("starve node 1 + crash node 4", StarvationScheduler(1, seed=3), {4: 0}),
    ]
    for label, scheduler, crashed in scenarios:
        result = run_ben_or(
            5, 2, [0, 1, 1, 0, 1],
            scheduler=scheduler, crashed=dict(crashed), seed=5,
        )
        rows.append(
            (
                label,
                result.agreement,
                result.validity,
                result.max_phase,
                result.deliveries,
            )
        )
    return rows


def test_bench_e16_ben_or_asynchrony(benchmark):
    rows = benchmark.pedantic(e16_rows, iterations=1, rounds=1)
    print_table(
        "E16a: Ben-Or consensus under adversarial asynchrony (n=5, t=2)",
        ["scenario", "agreement", "validity", "phases", "deliveries"],
        rows,
    )
    for _label, agreement, validity, _phases, _d in rows:
        assert agreement and validity


def test_bench_e16_naive_protocol_deadlocks(benchmark):
    def run():
        nodes = [NaiveWaitAllNode(i, 5, 1) for i in range(5)]
        net = AsyncNetwork(nodes, RandomScheduler(0), crashed={4: 0})
        net.run()
        return net

    net = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        "E16b: the wait-for-all strawman under one crash",
        ["protocol", "deadlocked", "any output"],
        [
            (
                "wait-for-all majority",
                net.is_deadlocked(),
                any(v is not None for v in net.honest_outputs().values()),
            )
        ],
    )
    assert net.is_deadlocked()


def test_bench_e16_ben_or_phase_distribution(benchmark):
    """Distribution of phases to terminate over random schedules."""

    def sample():
        phases = []
        for seed in range(15):
            result = run_ben_or(
                5, 2, [0, 1, 0, 1, 1],
                scheduler=RandomScheduler(seed), seed=seed,
            )
            assert result.agreement
            phases.append(result.max_phase)
        return phases

    phases = benchmark.pedantic(sample, iterations=1, rounds=1)
    print_table(
        "E16c: Ben-Or phases to terminate (mixed inputs, 15 random schedules)",
        ["min", "median", "max"],
        [(min(phases), int(np.median(phases)), max(phases))],
    )
    assert max(phases) < 200  # terminates with probability 1 (and fast)
