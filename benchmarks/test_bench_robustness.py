"""E1 & E2: Section 2's worked examples of resilience and immunity.

E1 — the 0/1 coordination game: all-0 is a Nash equilibrium, yet any two
players can jointly deviate and double their payoff (not 2-resilient).

E2 — the bargaining game: all-stay is k-resilient for every k and Pareto
optimal, yet a single deviator zeroes out everyone else (not 1-immune).

Both tables are produced by the experiment registry
(``coordination_robustness`` / ``bargaining_robustness`` scenarios) run
through :func:`repro.experiments.run_experiments` — the benchmark times
the shared sweep pipeline, not a bespoke driver.
"""

import pytest

from benchmarks.conftest import print_table, timed_rows
from repro.experiments import run_experiments


def e1_rows():
    results = run_experiments(scenarios=["coordination_robustness"])
    return [
        (
            r.params["n"],
            r.metrics["is_nash"],
            r.metrics["max_k_strong"],
            f"pair {r.metrics['witness_coalition']} -> "
            f"gains {r.metrics['witness_gains']}",
        )
        for r in results
    ]


def test_bench_e1_coordination_resilience(benchmark):
    rows = timed_rows(
        benchmark, "robustness", "e1_coordination", e1_rows,
        workload="coordination_robustness registry sweep, n=2..5",
    )
    print_table(
        "E1: 0/1 coordination game (all-0 profile)",
        ["n", "Nash?", "max k-resilient", "witness 2-coalition deviation"],
        rows,
    )
    assert [n for n, *_ in rows] == [2, 3, 4, 5]
    for n, is_nash, max_k, _witness in rows:
        assert is_nash
        assert max_k == 1  # Nash but never 2-resilient


def e2_rows():
    results = run_experiments(scenarios=["bargaining_robustness"])
    return [
        (
            r.params["n"],
            r.metrics["max_k"],
            r.metrics["max_t"],
            r.metrics["pareto_optimal"],
            f"player {r.metrics['witness_deviator']} leaves -> "
            f"victim {r.metrics['witness_victim']} loses "
            f"{r.metrics['witness_loss']:g}",
        )
        for r in results
    ]


def test_bench_e2_bargaining_immunity(benchmark):
    rows = timed_rows(
        benchmark, "robustness", "e2_bargaining", e2_rows,
        workload="bargaining_robustness registry sweep, n=2..5",
    )
    print_table(
        "E2: bargaining game (all-stay profile)",
        ["n", "max k-resilient", "max t-immune", "Pareto optimal", "fragility witness"],
        rows,
    )
    for n, k, t, pareto, _w in rows:
        assert k == n  # resilient for every coalition size
        assert t == 0  # but not even 1-immune
        assert pareto
