"""E1 & E2: Section 2's worked examples of resilience and immunity.

E1 — the 0/1 coordination game: all-0 is a Nash equilibrium, yet any two
players can jointly deviate and double their payoff (not 2-resilient).

E2 — the bargaining game: all-stay is k-resilient for every k and Pareto
optimal, yet a single deviator zeroes out everyone else (not 1-immune).
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.robust import (
    immunity_violations,
    max_immunity,
    max_resilience,
    resilience_violations,
    robustness_report,
)
from repro.games.classics import bargaining_game, coordination_01_game
from repro.games.normal_form import profile_as_mixed


def _all_zero(game):
    return profile_as_mixed((0,) * game.n_players, game.num_actions)


def e1_rows(n_values):
    rows = []
    for n in n_values:
        game = coordination_01_game(n)
        profile = _all_zero(game)
        report = robustness_report(game, profile)
        violation = resilience_violations(game, profile, 2)[0]
        rows.append(
            (
                n,
                report.is_nash,
                report.max_k_strong,
                f"pair {violation.coalition} -> gains {violation.gains}",
            )
        )
    return rows


def test_bench_e1_coordination_resilience(benchmark):
    rows = benchmark.pedantic(
        e1_rows, args=([2, 3, 4, 5],), iterations=1, rounds=1
    )
    print_table(
        "E1: 0/1 coordination game (all-0 profile)",
        ["n", "Nash?", "max k-resilient", "witness 2-coalition deviation"],
        rows,
    )
    for n, is_nash, max_k, _witness in rows:
        assert is_nash
        assert max_k == 1  # Nash but never 2-resilient


def e2_rows(n_values):
    rows = []
    for n in n_values:
        game = bargaining_game(n)
        profile = _all_zero(game)
        k = max_resilience(game, profile)
        t = max_immunity(game, profile)
        violation = immunity_violations(game, profile, 1)[0]
        pareto = game.is_pareto_optimal_pure((0,) * n)
        rows.append(
            (n, k, t, pareto, f"player {violation.deviators[0]} leaves -> "
             f"victim {violation.victim} loses {violation.loss:g}")
        )
    return rows


def test_bench_e2_bargaining_immunity(benchmark):
    rows = benchmark.pedantic(
        e2_rows, args=([2, 3, 4, 5],), iterations=1, rounds=1
    )
    print_table(
        "E2: bargaining game (all-stay profile)",
        ["n", "max k-resilient", "max t-immune", "Pareto optimal", "fragility witness"],
        rows,
    )
    for n, k, t, pareto, _w in rows:
        assert k == n  # resilient for every coalition size
        assert t == 0  # but not even 1-immune
        assert pareto
