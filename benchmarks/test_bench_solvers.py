"""E14: solver substrate cross-validation and scaling.

Not a paper table — this benchmark certifies the substrate every other
experiment stands on: the three independent 2-player solvers agree on
equilibrium values, and their costs scale as expected.

The cross-validation table runs through the experiment registry
(``solver_cross_validation`` scenario); the scaling cases below it
benchmark the raw solver calls directly.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table, timed_rows
from repro.experiments import run_experiments
from repro.games.normal_form import NormalFormGame
from repro.solvers import (
    lemke_howson,
    support_enumeration,
    zero_sum_equilibrium,
)


def cross_validation_rows():
    results = run_experiments(scenarios=["solver_cross_validation"])
    return [
        (
            r.params["game"],
            r.metrics["n_support_equilibria"],
            "ok" if r.metrics["lemke_howson_ok"] else "FAIL",
            f"{r.metrics['fp_regret']:.3f}",
        )
        for r in results
    ]


def test_bench_e14_cross_validation(benchmark):
    rows = timed_rows(
        benchmark, "solvers", "cross_validation", cross_validation_rows,
        workload="solver_cross_validation registry sweep, 6 classic games",
    )
    print_table(
        "E14a: solver cross-validation on the classic games",
        ["game", "#equilibria (support enum)", "Lemke-Howson", "FP regret"],
        rows,
    )
    for name, n_eq, lh, _fp in rows:
        assert n_eq >= 1, name
        assert lh == "ok", name


def random_zero_sum(size, seed):
    rng = np.random.default_rng(seed)
    return NormalFormGame.from_bimatrix(rng.normal(size=(size, size)))


@pytest.mark.parametrize("size", [4, 8, 16, 32])
def test_bench_e14_zero_sum_lp_scaling(benchmark, size):
    game = random_zero_sum(size, seed=size)

    def solve():
        return zero_sum_equilibrium(game)

    profile, value = benchmark(solve)
    assert game.is_nash(profile, tol=1e-6)
    assert abs(value) < 3.0  # random zero-sum values concentrate near 0


@pytest.mark.parametrize("size", [2, 3, 4, 5])
def test_bench_e14_support_enumeration_scaling(benchmark, size):
    rng = np.random.default_rng(size)
    game = NormalFormGame.from_bimatrix(
        rng.integers(-5, 6, size=(size, size)).astype(float),
        rng.integers(-5, 6, size=(size, size)).astype(float),
    )
    equilibria = benchmark(lambda: support_enumeration(game))
    for profile in equilibria:
        assert game.is_nash(profile, tol=1e-6)


def test_bench_e14_lemke_howson_medium_game(benchmark):
    rng = np.random.default_rng(17)
    game = NormalFormGame.from_bimatrix(
        rng.normal(size=(12, 12)), rng.normal(size=(12, 12))
    )
    profile = benchmark(lambda: lemke_howson(game))
    assert game.is_nash(profile, tol=1e-5)


def batched_dynamics_rows():
    results = run_experiments(
        scenarios=["fp_basin_sweep", "replicator_basin_sweep"]
    )
    rows = []
    for r in results:
        if r.scenario == "fp_basin_sweep":
            detail = (
                f"modal terminal {r.metrics['modal_terminal']}, "
                f"max regret {r.metrics['max_regret']:.3f}"
            )
        else:
            detail = (
                f"basins {r.metrics['basin_counts']}, "
                f"converged {r.metrics['converged_fraction']:.0%}"
            )
        rows.append((r.scenario, r.params["game"], r.params["n_runs"], detail))
    return rows


def test_bench_e14_batched_dynamics(benchmark):
    rows = benchmark.pedantic(batched_dynamics_rows, iterations=1, rounds=1)
    print_table(
        "E14b: batched learning-dynamics replay (registry sweeps)",
        ["scenario", "game", "runs", "outcome"],
        rows,
    )
    assert len(rows) == 4
