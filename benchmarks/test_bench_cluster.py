"""Cluster benchmarks: horizontal scaling of a parallelizable sweep.

A real coordinator server (in-process, ephemeral port) with two workers
speaking the actual ``/v1/workers`` → ``/v1/lease`` → ``/v1/complete``
protocol.  Two rows go to ``BENCH_cluster.json``:

* ``sweep_1worker`` — end-to-end latency of a 6-case parallelizable
  sweep on a single worker;
* ``sweep_2workers`` — the same sweep (fresh seed, so nothing is
  cached) after a second worker registers; the workload string records
  the speedup, which the ISSUE-5 acceptance requires to be >= 1.5x.

The benchmark case is *latency-bound*: a small NumPy computation plus a
150 ms blocking wait, modelling the common fabric workload where a case
spends most of its wall clock waiting on something external (an LP
solver subprocess, a remote service, disk).  That makes the measured
quantity the **fabric's scheduling overlap** — two workers genuinely
interleave their waits — rather than raw CPU scaling, so the row is
meaningful and stable on any core count (CPU-bound sweeps scale with
hardware cores on top of this; the container running the committed
baseline has a single core, where CPU-bound 2-worker scaling is
physically impossible).

Timed by hand (``record_row``) rather than pytest-benchmark: each sweep
is only cold once per seed.
"""

import threading
import time

import numpy as np
import pytest

from conftest import print_table, record_row

from repro.cluster import ClusterCoordinator, run_worker_thread
from repro.experiments.registry import scenario, unregister
from repro.service.aserver import start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

CASE_WAIT_S = 0.15
N_CASES = 6
WORKLOAD = f"{N_CASES} latency-bound cases ({1000 * CASE_WAIT_S:.0f} ms wait each) over HTTP"


@pytest.fixture
def latency_scenario():
    """Register the latency-bound benchmark scenario for this test."""

    @scenario(
        family="_bench_cluster",
        name="_bench_cluster_case",
        params={"i": list(range(N_CASES))},
    )
    def _bench_cluster_case(i: int, seed: int):
        """One latency-bound case: tiny deterministic compute + wait."""
        rng = np.random.default_rng(seed)
        matrix = rng.random((32, 32))
        time.sleep(CASE_WAIT_S)
        return {"i": i, "trace": float(np.trace(matrix @ matrix))}

    try:
        yield "_bench_cluster_case"
    finally:
        unregister("_bench_cluster_case")


def _timed_sweep(client: ServiceClient, name: str, base_seed: int) -> float:
    """One cold cluster sweep end to end; returns wall-clock seconds."""
    start = time.perf_counter()
    job, results = client.run_sweep(
        scenarios=[name], base_seed=base_seed, executor="cluster", timeout=120
    )
    elapsed = time.perf_counter() - start
    assert job["cache_misses"] == len(results) == N_CASES
    return elapsed


def test_bench_cluster_two_workers_beat_one(tmp_path, latency_scenario):
    """Record 1-worker vs 2-worker wall clock on a parallelizable sweep."""
    store = ResultStore(str(tmp_path / "server-cache"))
    coordinator = ClusterCoordinator(store=store, unit_size=1, lease_ttl=60.0)
    server, _thread = start_async_server(store=store, coordinator=coordinator)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    client = ServiceClient(url, timeout=120.0)
    stop = threading.Event()
    threads = []
    try:
        _w1, t1 = run_worker_thread(
            ServiceClient(url), name="w1", poll=0.005, stop=stop
        )
        threads.append(t1)
        # Warm-up sweep on a throwaway seed (connection + path warm).
        client.run_sweep(
            scenarios=[latency_scenario],
            base_seed=7,
            executor="cluster",
            timeout=120,
        )
        one_s = _timed_sweep(client, latency_scenario, base_seed=101)

        _w2, t2 = run_worker_thread(
            ServiceClient(url), name="w2", poll=0.005, stop=stop
        )
        threads.append(t2)
        two_s = _timed_sweep(client, latency_scenario, base_seed=202)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        server.shutdown()
        server.server_close()

    speedup = one_s / two_s
    record_row("cluster", "sweep_1worker", one_s, workload=WORKLOAD)
    record_row(
        "cluster",
        "sweep_2workers",
        two_s,
        workload=f"{WORKLOAD}, {speedup:.2f}x vs 1 worker",
    )
    print_table(
        "cluster scaling (cold sweeps, 2 workers vs 1)",
        ["row", "ms", "speedup"],
        [
            ["sweep_1worker", f"{1000 * one_s:.1f}", ""],
            ["sweep_2workers", f"{1000 * two_s:.1f}", f"{speedup:.2f}x"],
        ],
    )
    assert speedup >= 1.5, f"2 workers only {speedup:.2f}x faster than 1"
