"""Observability overhead benchmark: instrumented vs no-op warm fetch.

The repro.obs acceptance evidence.  Rows go to ``BENCH_obs.json``:

* ``warm_fetch_instrumented`` — the async warm-fetch batch (same shape
  as ``BENCH_service_async.json``'s ``warm_fetch_c100``) with a live
  :class:`~repro.obs.metrics.MetricsRegistry`: per-route counters and
  latency histograms observed on every request, connection gauge and
  event-loop-lag probe running.
* ``warm_fetch_noop`` — the identical batch against a server built on
  the :func:`~repro.obs.metrics.null_registry`, the disabled
  configuration instrumented code paths still flow through.

The in-test gate asserts the instrumented run stays within 5% of the
no-op run (best-of-``ROUNDS``, interleaved to share thermal/noise
conditions, with one retry round for CI jitter).  Untraced requests
never record spans, so the histogram ``observe`` + counter ``inc`` per
request is the entire hot-path delta being measured here.
"""

import asyncio

from conftest import print_table, record_row
from loadgen import run_load

from repro.experiments.runner import run_experiments
from repro.obs.metrics import MetricsRegistry, null_registry
from repro.service.app import build_manager
from repro.service.aserver import AsyncServiceServer
from repro.service.store import ResultStore

SWEEP = ["coordination_robustness"]

CONNECTIONS = 100
REQUESTS_PER_CONNECTION = 100
PIPELINE_DEPTH = 16
ROUNDS = 4
MAX_OVERHEAD = 1.05


async def _measure_pair(store, path):
    """Best-of-``ROUNDS`` seconds for (instrumented, no-op) servers.

    Both servers run on the same event loop and the rounds interleave
    the two configurations, so cache warmth and CPU noise hit both
    sides equally.
    """
    servers = {}
    best = {}
    for registry_name, registry in (
        ("instrumented", MetricsRegistry()),
        ("noop", null_registry()),
    ):
        server = AsyncServiceServer(
            build_manager(None, store=store), registry=registry
        )
        await server.start()
        servers[registry_name] = server
        best[registry_name] = float("inf")
    try:
        for round_index in range(ROUNDS):
            # Alternate who goes first: back-to-back runs on one loop
            # systematically favor the second server (~2% measured with
            # two identical no-op servers), so a fixed order would bias
            # the ratio by more than the effect under test.
            order = ["instrumented", "noop"]
            if round_index % 2:
                order.reverse()
            for name in order:
                host, port = servers[name].server_address
                report = await run_load(
                    host,
                    port,
                    path,
                    connections=CONNECTIONS,
                    requests_per_connection=REQUESTS_PER_CONNECTION,
                    pipeline_depth=PIPELINE_DEPTH,
                )
                best[name] = min(best[name], report.seconds)
    finally:
        for server in servers.values():
            await server.drain()
    return best["instrumented"], best["noop"]


def test_bench_obs_overhead_within_five_percent(tmp_path):
    """Instrumentation costs <= 5% on the pipelined warm-fetch path."""
    store = ResultStore(str(tmp_path / "cache"))
    run_experiments(scenarios=SWEEP, store=store)  # seed the blobs
    key = next(iter(store.keys()))
    path = f"/v1/results/{key}"

    instrumented, noop = asyncio.run(_measure_pair(store, path))
    if instrumented > noop * MAX_OVERHEAD:
        # One retry absorbs a noisy-neighbor round; a real regression
        # reproduces and still fails below.
        instrumented, noop = asyncio.run(_measure_pair(store, path))

    total = CONNECTIONS * REQUESTS_PER_CONNECTION
    workload = (
        f"{total} GET {path} over {CONNECTIONS} conns "
        f"(depth {PIPELINE_DEPTH}), best of {ROUNDS}"
    )
    record_row(
        "obs",
        "warm_fetch_instrumented",
        instrumented,
        workload=workload + ", live registry",
    )
    record_row(
        "obs",
        "warm_fetch_noop",
        noop,
        workload=workload + ", null registry",
    )
    ratio = instrumented / noop if noop else 1.0
    print_table(
        "observability overhead (warm fetch, best-of rounds)",
        ["row", "total s", "req/s", "vs noop"],
        [
            [
                "instrumented",
                f"{instrumented:.3f}",
                f"{total / instrumented:,.0f}",
                f"{ratio:.3f}x",
            ],
            ["noop", f"{noop:.3f}", f"{total / noop:,.0f}", ""],
        ],
    )
    assert instrumented <= noop * MAX_OVERHEAD, (
        f"instrumented warm fetch is {ratio:.3f}x the no-op run "
        f"(gate: {MAX_OVERHEAD}x)"
    )
