"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one artifact of the paper (a worked example,
a theorem table, or a figure's game) and prints the reproduced rows so a
run with ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment log.  EXPERIMENTS.md records the expected output of each.

Table rendering is shared with the experiment runner
(:func:`repro.experiments.results.format_table`), so registry sweeps and
benchmark logs produce identical layouts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.results import format_table


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduced table to stdout."""
    print()
    print(format_table(title, header, rows))
