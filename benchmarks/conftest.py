"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one artifact of the paper (a worked example,
a theorem table, or a figure's game) and prints the reproduced rows so a
run with ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment log.  EXPERIMENTS.md records the expected output of each.

Table rendering is shared with the experiment runner
(:func:`repro.experiments.results.format_table`), so registry sweeps and
benchmark logs produce identical layouts.

Benchmark trajectory: rows timed through :func:`timed_rows` (or recorded
directly with :func:`record_row`) are written through to
``benchmarks/out/BENCH_<suite>.json`` — warm best-of-N millisecond
timings keyed by row name.  CI uploads these as artifacts
and ``benchmarks/check_bench_regression.py`` fails the build when a row
regresses more than 3x against the committed ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Sequence

from repro.experiments.results import format_table

BENCH_OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

_RECORDS: Dict[str, Dict[str, dict]] = {}


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduced table to stdout."""
    print()
    print(format_table(title, header, rows))


def record_row(suite: str, row: str, seconds: float, workload: str = "") -> None:
    """Record one timed benchmark row into the suite's BENCH JSON.

    Rows write through to ``benchmarks/out/BENCH_<suite>.json``
    immediately (merging with rows already emitted this run), so the
    artifact exists however pytest's session ends and regardless of
    which subset of the suite ran.
    """
    entry = {"ms": round(seconds * 1000.0, 3)}
    if workload:
        entry["workload"] = workload
    rows = _RECORDS.setdefault(suite, {})
    rows[row] = entry
    os.makedirs(BENCH_OUT_DIR, exist_ok=True)
    path = os.path.join(BENCH_OUT_DIR, f"BENCH_{suite}.json")
    if os.path.exists(path) and len(rows) == 1:
        # First write of this run: fold in rows from an earlier pytest
        # invocation of the same session (e.g. per-file CI runs).
        try:
            with open(path, encoding="utf-8") as handle:
                rows = {**json.load(handle), **rows}
        except (OSError, ValueError):
            pass
        _RECORDS[suite] = rows
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
        handle.write("\n")


def timed_rows(benchmark, suite: str, row: str, fn, *args, workload: str = ""):
    """Run ``fn`` warm best-of-3 under pytest-benchmark and record it.

    Three rounds through ``benchmark.pedantic`` warm caches on the first
    round; the recorded timing is the minimum, matching the "warm
    best-of-3" convention of the committed baselines.
    """
    out = benchmark.pedantic(fn, args=args, iterations=1, rounds=3)
    record_row(suite, row, benchmark.stats.stats.min, workload=workload)
    return out
