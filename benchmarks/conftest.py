"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one artifact of the paper (a worked example,
a theorem table, or a figure's game) and prints the reproduced rows so a
run with ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment log.  EXPERIMENTS.md records the expected output of each.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one reproduced table to stdout."""
    rows = [tuple(str(c) for c in row) for row in rows]
    header = tuple(str(c) for c in header)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
