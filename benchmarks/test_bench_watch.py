"""Watchdog overhead benchmark: warm fetch with and without a scraper.

The repro.obs.watch acceptance evidence.  Rows go to
``BENCH_watch.json``:

* ``warm_fetch_watched`` — the async warm-fetch batch (same shape as
  ``BENCH_obs.json``'s rows) while a live
  :class:`~repro.obs.watch.Watchdog` scrapes the server's
  ``/v1/metrics`` + ``/v1/raft/status`` + ``/v1/events`` at the
  default cadence, feeds its TSDB, and evaluates the full default
  rule catalog every tick (``start()`` scrapes immediately, so every
  batch absorbs at least one full scrape round).
* ``warm_fetch_unwatched`` — the identical batch with no watchdog
  attached.

The in-test gate asserts the watched run stays within 5% of the
unwatched run (best-of-``ROUNDS``, orders alternated so loop warmth
hits both sides equally, one retry round for CI jitter).  The watchdog
is a client of the server, not a wrapper around its hot path, so the
delta being measured is purely the scrape traffic plus any GIL/loop
contention from the scraper thread.
"""

import asyncio

from conftest import print_table, record_row
from loadgen import run_load

from repro.experiments.runner import run_experiments
from repro.obs.metrics import MetricsRegistry
from repro.obs.watch import Watchdog
from repro.service.app import build_manager
from repro.service.aserver import AsyncServiceServer
from repro.service.store import ResultStore

SWEEP = ["coordination_robustness"]

CONNECTIONS = 100
REQUESTS_PER_CONNECTION = 100
PIPELINE_DEPTH = 16
ROUNDS = 4
MAX_OVERHEAD = 1.05
SCRAPE_INTERVAL = 1.0  # the shipped default cadence; start() scrapes
# immediately, so every ~0.3 s batch still absorbs a full scrape round



async def _measure_pair(store, path):
    """Best-of-``ROUNDS`` seconds for (watched, unwatched) batches.

    One server serves every batch; the watchdog thread is started for
    the watched batches and stopped for the unwatched ones.  Rounds
    alternate which configuration goes first so cache warmth and CPU
    noise land on both sides equally.
    """
    server = AsyncServiceServer(
        build_manager(None, store=store), registry=MetricsRegistry()
    )
    await server.start()
    host, port = server.server_address
    watchdog = Watchdog(
        [f"http://{host}:{port}"], interval=SCRAPE_INTERVAL, timeout=2.0
    )
    best = {"watched": float("inf"), "unwatched": float("inf")}
    loop = asyncio.get_running_loop()
    try:
        for round_index in range(ROUNDS):
            order = ["watched", "unwatched"]
            if round_index % 2:
                order.reverse()
            for name in order:
                if name == "watched":
                    watchdog.start()
                try:
                    report = await run_load(
                        host,
                        port,
                        path,
                        connections=CONNECTIONS,
                        requests_per_connection=REQUESTS_PER_CONNECTION,
                        pipeline_depth=PIPELINE_DEPTH,
                    )
                finally:
                    if name == "watched":
                        # stop() joins the scraper thread, whose blocking
                        # urllib requests need the event loop to answer —
                        # so the join must not block the loop itself.
                        await loop.run_in_executor(None, watchdog.stop)
                best[name] = min(best[name], report.seconds)
    finally:
        await loop.run_in_executor(None, watchdog.stop)
        await server.drain()
    assert watchdog.ticks > 0, "the watchdog never completed a scrape"
    return best["watched"], best["unwatched"]


def test_bench_watch_overhead_within_five_percent(tmp_path):
    """An aggressive scraper costs <= 5% on the warm-fetch path."""
    store = ResultStore(str(tmp_path / "cache"))
    run_experiments(scenarios=SWEEP, store=store)  # seed the blobs
    key = next(iter(store.keys()))
    path = f"/v1/results/{key}"

    watched, unwatched = asyncio.run(_measure_pair(store, path))
    if watched > unwatched * MAX_OVERHEAD:
        # One retry absorbs a noisy-neighbor round; a real regression
        # reproduces and still fails below.
        watched, unwatched = asyncio.run(_measure_pair(store, path))

    total = CONNECTIONS * REQUESTS_PER_CONNECTION
    workload = (
        f"{total} GET {path} over {CONNECTIONS} conns "
        f"(depth {PIPELINE_DEPTH}), best of {ROUNDS}"
    )
    record_row(
        "watch",
        "warm_fetch_watched",
        watched,
        workload=workload + f", watchdog @ {SCRAPE_INTERVAL}s",
    )
    record_row(
        "watch",
        "warm_fetch_unwatched",
        unwatched,
        workload=workload + ", no watchdog",
    )
    ratio = watched / unwatched if unwatched else 1.0
    print_table(
        "watchdog overhead (warm fetch, best-of rounds)",
        ["row", "total s", "req/s", "vs unwatched"],
        [
            [
                "watched",
                f"{watched:.3f}",
                f"{total / watched:,.0f}",
                f"{ratio:.3f}x",
            ],
            ["unwatched", f"{unwatched:.3f}", f"{total / unwatched:,.0f}", ""],
        ],
    )
    assert watched <= unwatched * MAX_OVERHEAD, (
        f"watched warm fetch is {ratio:.3f}x the unwatched run "
        f"(gate: {MAX_OVERHEAD}x)"
    )
