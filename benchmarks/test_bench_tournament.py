"""E13: the Axelrod tournament — "tit-for-tat does exceedingly well".

Round-robin FRPD over the classic strategy zoo, the noisy variant, and
the ecological (replicator) tournament in which defectors wash out.
"""

import pytest

from benchmarks.conftest import print_table, timed_rows
from repro.dynamics.evolution import evolutionary_tournament
from repro.dynamics.tournament import round_robin_tournament
from repro.machines.strategies import strategy_zoo


def test_bench_e13_round_robin(benchmark):
    result = timed_rows(
        benchmark, "tournament", "round_robin",
        lambda: round_robin_tournament(
            strategy_zoo(), rounds=200, delta=0.995, repetitions=1
        ),
        workload="9-strategy zoo, 200 rounds, memory-one grid + generic",
    )
    print_table(
        "E13a: round-robin FRPD tournament (200 rounds, delta=0.995)",
        ["rank", "strategy", "score"],
        [
            (i + 1, name, f"{score:.1f}")
            for i, (name, score) in enumerate(result.ranking())
        ],
    )
    # Shape claims: tit-for-tat places at/near the top; always_defect does
    # not win; the winners are reciprocators.
    assert result.rank_of("tit_for_tat") <= 3
    assert result.rank_of("always_defect") > 3


def test_bench_e13_noisy_tournament(benchmark):
    result = benchmark.pedantic(
        lambda: round_robin_tournament(
            strategy_zoo(), rounds=200, delta=0.995, noise=0.03,
            repetitions=2, seed=5,
        ),
        iterations=1,
        rounds=1,
    )
    print_table(
        "E13b: the same tournament with 3% execution noise",
        ["rank", "strategy", "score"],
        [
            (i + 1, name, f"{score:.1f}")
            for i, (name, score) in enumerate(result.ranking())
        ],
    )
    # Forgiving reciprocators stay ahead of always_defect even with noise.
    assert result.rank_of("tit_for_two_tats") < result.rank_of(
        "always_defect"
    )


def test_bench_e13_ecological(benchmark):
    result = timed_rows(
        benchmark, "tournament", "ecological",
        lambda: evolutionary_tournament(
            strategy_zoo()[:6], rounds=150, iterations=4000
        ),
        workload="6-strategy empirical matrix + 4000 replicator steps",
    )
    print_table(
        "E13c: ecological tournament (replicator dynamics over the zoo)",
        ["strategy", "terminal population share"],
        [
            (name, f"{share:.1%}")
            for name, share in sorted(
                zip(result.names, result.final), key=lambda p: -p[1]
            )
        ],
    )
    shares = dict(zip(result.names, result.final))
    assert shares["always_defect"] < 0.05
    assert shares["tit_for_tat"] > 0.05
