"""E3: the ADGH threshold catalogue as a feasibility matrix.

Reproduces the paper's nine-bullet theorem summary (Section 2) as a table
over n for (k, t) = (1, 1), under increasing resource assumptions — the
shape to check is the staircase of thresholds 3k+3t, 2k+3t, 2k+2t, k+3t,
k+t.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.feasibility import (
    Resources,
    feasibility_table,
    mediator_implementability,
)

RESOURCE_LADDER = [
    ("nothing", Resources()),
    (
        "punishment+utilities",
        Resources(punishment_strategy=True, utilities_known=True),
    ),
    ("broadcast", Resources(broadcast=True)),
    (
        "crypto+bounded",
        Resources(cryptography=True, polynomially_bounded=True),
    ),
    (
        "crypto+bounded+PKI",
        Resources(cryptography=True, polynomially_bounded=True, pki=True),
    ),
]


def build_matrix(k, t, n_values):
    rows = []
    for n in n_values:
        cells = [n, mediator_implementability(n, k, t).regime.value]
        for _label, resources in RESOURCE_LADDER:
            v = mediator_implementability(n, k, t, resources)
            cells.append(
                "yes" if (v.implementable and not v.epsilon_only)
                else ("ε" if v.implementable else "no")
            )
        rows.append(tuple(cells))
    return rows


def test_bench_e3_feasibility_matrix(benchmark):
    k, t = 1, 1
    n_values = list(range(2, 11))
    rows = benchmark.pedantic(
        build_matrix, args=(k, t, n_values), iterations=1, rounds=1
    )
    print_table(
        f"E3: mediator implementability, k={k}, t={t} "
        "(yes = exact, ε = epsilon-implementation, no = impossible)",
        ["n", "regime"] + [label for label, _ in RESOURCE_LADDER],
        rows,
    )
    by_n = {row[0]: row for row in rows}
    # The paper's staircase for k=1, t=1 (thresholds 6, 5, 4, 2):
    assert by_n[7][2] == "yes"  # n > 3k+3t: unconditional
    assert by_n[7][3] == "yes"
    assert by_n[6][2] == "no"  # needs punishment + utilities
    assert by_n[6][3] == "yes"
    assert by_n[5][3] == "no"  # even punishment fails at n <= 2k+3t
    assert by_n[5][4] == "ε"  # broadcast gives epsilon
    assert by_n[4][4] == "no"
    assert by_n[4][6] == "ε"  # PKI regime reaches down to n > k+t
    assert by_n[2][6] == "no"  # n <= k+t: nothing helps


def test_bench_e3_threshold_sweep_scaling(benchmark):
    """Time the decision procedure over a large (n, k, t) grid."""

    def sweep():
        count = 0
        for k in range(1, 6):
            for t in range(0, 5):
                for n in range(2, 40):
                    v = mediator_implementability(
                        n, k, t, RESOURCE_LADDER[4][1]
                    )
                    count += v.implementable
        return count

    total = benchmark(sweep)
    assert total > 0
