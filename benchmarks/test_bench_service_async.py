"""Async service benchmarks: warm-fetch throughput at high concurrency.

The ISSUE-6 acceptance evidence.  Rows go to ``BENCH_service_async.json``:

* ``warm_fetch_c100`` / ``warm_fetch_c1000`` — wall time of a fixed
  batch of pipelined ``GET /v1/results/<key>`` requests over 100 and
  1,000 concurrent keep-alive connections (the workload string records
  req/s plus p50/p99 latency).  Generator and server share one event
  loop (see :mod:`loadgen`) — the honest single-core configuration.
* ``sweep_warm_async`` — the E1 sweep through the async server with a
  warm cache, byte-identical to a cold serial run (checked here).

The threaded reference point is ``BENCH_service.json``'s ``warm_fetch``
row (~0.64 ms/request ≈ 1,575 req/s sequential): the c1000 row must
land an order of magnitude above it.
"""

import asyncio
import time

from conftest import print_table, record_row
from loadgen import run_load

from repro.experiments.runner import run_experiments
from repro.service.app import build_manager
from repro.service.aserver import AsyncServiceServer, start_async_server
from repro.service.client import ServiceClient
from repro.service.store import ResultStore

SWEEP = ["coordination_robustness"]

# Fixed request batches: wall time is the recorded metric, so the 3x
# regression gate bounds throughput loss directly.
MATRIX = [
    # (row, connections, requests per connection, pipeline depth)
    ("warm_fetch_c100", 100, 100, 16),
    ("warm_fetch_c1000", 1000, 20, 4),
]

# Hard sanity floor, far under the ~20k req/s this container measures
# but far over the ~1.6k req/s threaded baseline: a regression that
# falls back to thread-per-request economics fails loudly here.
MIN_REQ_PER_S = 6000.0


def test_bench_async_warm_fetch_concurrency(tmp_path):
    """Record pipelined warm-fetch throughput at 100 and 1k connections."""
    store = ResultStore(str(tmp_path / "cache"))
    run_experiments(scenarios=SWEEP, store=store)  # seed the blobs
    key = next(iter(store.keys()))
    path = f"/v1/results/{key}"

    async def _measure():
        """Serve and generate load on one shared event loop."""
        server = AsyncServiceServer(build_manager(None, store=store))
        await server.start()
        host, port = server.server_address
        reports = []
        for row, connections, per_connection, depth in MATRIX:
            report = await run_load(
                host,
                port,
                path,
                connections=connections,
                requests_per_connection=per_connection,
                pipeline_depth=depth,
            )
            reports.append((row, report))
        await server.drain()
        return reports

    reports = asyncio.run(_measure())
    table = []
    for row, report in reports:
        record_row(
            "service_async", row, report.seconds, workload=report.workload(path)
        )
        table.append(
            [
                report.connections,
                report.total_requests,
                f"{report.seconds:.3f}",
                f"{report.req_per_s:,.0f}",
                f"{report.p50_ms:.2f}",
                f"{report.p99_ms:.2f}",
            ]
        )
        assert report.req_per_s >= MIN_REQ_PER_S, (
            f"{row}: {report.req_per_s:.0f} req/s is below the "
            f"{MIN_REQ_PER_S:.0f} floor"
        )
    print_table(
        "async warm-fetch throughput (pipelined keep-alive)",
        ["conns", "requests", "total s", "req/s", "p50 ms", "p99 ms"],
        table,
    )


def test_bench_async_warm_sweep_byte_identical(tmp_path):
    """Record async sweep latency; warm bytes must equal cold serial."""
    store = ResultStore(str(tmp_path / "cache"))
    server, _thread = start_async_server(store=store)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        start = time.perf_counter()
        cold_job, _cold = client.run_sweep(scenarios=SWEEP)
        cold_s = time.perf_counter() - start
        assert cold_job["cache_misses"] > 0

        warm_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm_job, warm_results = client.run_sweep(scenarios=SWEEP)
            warm_s = min(warm_s, time.perf_counter() - start)
            assert warm_job["cache_hits"] == len(warm_results)

        # The acceptance bar: a warm sweep through the async server is
        # byte-identical to a cold serial in-process run.
        serial = run_experiments(scenarios=SWEEP)
        assert warm_results.payload_bytes() == serial.payload_bytes()
    finally:
        server.shutdown()
        server.server_close()

    workload = f"{len(serial)} cases of {SWEEP[0]} via asyncio server"
    record_row("service_async", "sweep_cold_async", cold_s, workload=workload)
    record_row(
        "service_async",
        "sweep_warm_async",
        warm_s,
        workload=workload + ", cached",
    )
    print_table(
        "async sweep latency (cold vs warm cache)",
        ["row", "ms", "speedup"],
        [
            ["sweep_cold_async", f"{1000 * cold_s:.1f}", ""],
            ["sweep_warm_async", f"{1000 * warm_s:.1f}", f"{cold_s / warm_s:.1f}x"],
        ],
    )
