"""Fail when a benchmark row regresses against the committed baselines.

Usage (what the CI ``benchmarks-smoke`` job runs after the benchmark
suite has emitted ``benchmarks/out/BENCH_*.json``)::

    python benchmarks/check_bench_regression.py
    python benchmarks/check_bench_regression.py --factor 3 --require scrip

A row fails when its fresh timing exceeds ``factor`` times the committed
``benchmarks/baselines/BENCH_<suite>.json`` value — loose enough to
absorb runner-to-runner hardware variance, tight enough to catch a hot
path falling off its vectorized fast path.  Rows are compared against
``max(baseline, --floor-ms)`` so sub-floor rows (a few milliseconds,
dominated by timer and scheduler jitter) cannot fail CI on noise alone.
If the runner fleet's hardware shifts, re-commit the baselines from the
``bench-trajectory`` CI artifact.  Suites present only in the baselines
(not emitted by this run) are skipped with a note unless named via
``--require``; rows new to this run are reported for adoption into the
baseline.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List

HERE = os.path.dirname(os.path.abspath(__file__))


def compare_suite(
    suite: str, baseline: dict, fresh: dict, factor: float, floor_ms: float
) -> List[str]:
    """Return failure messages for rows slower than ``factor`` x baseline.

    The effective baseline is ``max(committed, floor_ms)``: tiny rows
    are pure call overhead whose wall-clock jitters by more than the
    regression factor on shared CI runners, so they only fail once they
    grow past ``factor * floor_ms`` — real fast-path losses (10x+ on
    the substantial rows) still trip the gate.
    """
    failures = []
    for row, entry in sorted(baseline.items()):
        if row not in fresh:
            print(f"  [{suite}] {row}: missing from this run (baseline "
                  f"{entry['ms']:.1f} ms)")
            continue
        fresh_ms = fresh[row]["ms"]
        base_ms = entry["ms"]
        effective = max(base_ms, floor_ms)
        ratio = fresh_ms / effective if effective > 0 else float("inf")
        status = "FAIL" if ratio > factor else "ok"
        print(f"  [{suite}] {row}: {base_ms:.1f} ms -> {fresh_ms:.1f} ms "
              f"({ratio:.2f}x of max(baseline, {floor_ms:g} ms floor)) "
              f"{status}")
        if ratio > factor:
            failures.append(
                f"{suite}/{row}: {fresh_ms:.1f} ms is {ratio:.2f}x the "
                f"effective baseline {effective:.1f} ms (limit {factor:g}x)"
            )
    for row in sorted(set(fresh) - set(baseline)):
        print(f"  [{suite}] {row}: new row ({fresh[row]['ms']:.1f} ms), "
              "not in baseline")
    return failures


def main(argv=None) -> int:
    """Compare emitted BENCH JSONs against the committed baselines."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=os.path.join(HERE, "out"),
        help="directory with freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines", default=os.path.join(HERE, "baselines"),
        help="directory with committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--factor", type=float, default=3.0,
        help="failure threshold: fresh > factor * effective baseline",
    )
    parser.add_argument(
        "--floor-ms", type=float, default=25.0,
        help="jitter floor: baselines below this compare as this value",
    )
    parser.add_argument(
        "--require", action="append", default=[],
        help="suite name that must have been emitted (repeatable)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    seen = set()
    for path in sorted(glob.glob(os.path.join(args.baselines, "BENCH_*.json"))):
        suite = os.path.basename(path)[len("BENCH_"):-len(".json")]
        seen.add(suite)
        with open(path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        fresh_path = os.path.join(args.out, os.path.basename(path))
        if not os.path.exists(fresh_path):
            message = f"suite {suite!r}: no fresh BENCH JSON emitted"
            if suite in args.require:
                failures.append(message)
                print(f"  {message} (required)")
            else:
                print(f"  {message} (skipped)")
            continue
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        failures.extend(
            compare_suite(suite, baseline, fresh, args.factor, args.floor_ms)
        )
    for name in args.require:
        if name not in seen:
            failures.append(f"required suite {name!r} has no committed baseline")

    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
