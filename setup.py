"""Packaging for the repro distribution (src layout).

``pip install -e .`` gives an editable install without any PYTHONPATH
hacks; runtime dependencies are limited to numpy/scipy, with the test
stack (pytest, pytest-benchmark, hypothesis) in the ``test`` extra.
"""

from setuptools import find_packages, setup

setup(
    name="repro-halpern-podc08",
    version="1.0.0",
    description=(
        "Reproduction of Halpern, 'Beyond Nash Equilibrium: Solution "
        "Concepts for the 21st Century' (PODC 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
)
